package gdp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/dispatch"
	"repro/internal/experiments"
	"repro/internal/perf"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// APIVersion is the version tag of the request/response layer. Requests may
// leave their api_version empty (it defaults to this) or must match it.
const APIVersion = "v1"

// RequestError marks a client-side problem with a service request; the HTTP
// layer maps it to 400 Bad Request. When the problem originates in a typed
// domain error (for example workload.UnknownScenarioError), Err carries it so
// errors.As still reaches the cause through the service layer.
type RequestError struct {
	Msg string
	Err error
}

func (e *RequestError) Error() string { return "gdp: bad request: " + e.Msg }

// Unwrap exposes the wrapped domain error.
func (e *RequestError) Unwrap() error { return e.Err }

func badRequestf(format string, args ...any) error {
	return &RequestError{Msg: fmt.Sprintf(format, args...)}
}

// badRequestErr wraps a typed domain error as a 400 while keeping it
// reachable with errors.As.
func badRequestErr(err error) error {
	return &RequestError{Msg: err.Error(), Err: err}
}

// EstimateRequest asks for interference-free performance estimates of one
// multi-programmed workload: the workload runs in shared mode with the chosen
// accounting technique attached, and the response reports the per-core
// estimates the technique produced at runtime (no private-mode reference runs
// are needed — that is the point of the paper).
//
// The workload comes from exactly one of three descriptions: Benchmarks
// names one benchmark per core explicitly, Scenario selects a named scenario
// from the registry (see GET /v1/scenarios), or Cores+Mix generate a workload
// (Seed disambiguates repeated generations).
type EstimateRequest struct {
	APIVersion string `json:"api_version,omitempty"`
	// Cores is the CMP size (default 4; ignored when Benchmarks is set).
	Cores int `json:"cores,omitempty"`
	// Mix is the workload category: H, M, L, HHML, HMML or HMLL (default H).
	Mix string `json:"mix,omitempty"`
	// Scenario selects a named scenario workload instead of a mix (mutually
	// exclusive with Benchmarks and Mix).
	Scenario string `json:"scenario,omitempty"`
	// Benchmarks optionally lists one benchmark name per core.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Technique is the accounting technique: GDP, GDP-O, ITCA, PTCA or ASM
	// (default GDP-O).
	Technique string `json:"technique,omitempty"`
	// PRBEntries sizes the GDP/GDP-O Pending Request Buffer (default 32).
	PRBEntries int `json:"prb_entries,omitempty"`
	// InstructionsPerCore, IntervalCycles and Seed mirror SimOptions; zero
	// values select the engine scale's defaults.
	InstructionsPerCore uint64 `json:"instructions_per_core,omitempty"`
	IntervalCycles      uint64 `json:"interval_cycles,omitempty"`
	Seed                int64  `json:"seed,omitempty"`
	// MaxCycles bounds the simulation (0 = derived default).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
}

// CoreEstimate is one core's estimate in an EstimateResponse. The estimated
// private CPI is the instruction-weighted mean of the per-interval estimates.
type CoreEstimate struct {
	Core                int     `json:"core"`
	Benchmark           string  `json:"benchmark"`
	SharedCPI           float64 `json:"shared_cpi"`
	SharedIPC           float64 `json:"shared_ipc"`
	EstimatedPrivateCPI float64 `json:"estimated_private_cpi"`
	EstimatedPrivateIPC float64 `json:"estimated_private_ipc"`
	// EstimatedSlowdown is shared CPI over estimated private CPI (>= 1 when
	// the technique attributes any slowdown to interference).
	EstimatedSlowdown float64 `json:"estimated_slowdown"`
	// Intervals counts the measurement intervals that contributed.
	Intervals int `json:"intervals"`
}

// EstimateResponse is the outcome of one estimation query.
type EstimateResponse struct {
	APIVersion string         `json:"api_version"`
	Workload   string         `json:"workload"`
	Technique  string         `json:"technique"`
	Cycles     uint64         `json:"cycles"`
	Cores      []CoreEstimate `json:"cores"`
}

// Work-size limits: a shared service must bound how much simulation one
// request can demand, or a few oversized requests occupy every concurrency
// slot indefinitely. Out-of-range requests get 400, not a truncated run.
const (
	// maxServiceCores bounds a single estimate request's CMP size.
	maxServiceCores = 64
	// maxServiceInstructions bounds the per-core instruction sample of one
	// request (the paper-like scale uses 30k; 10M is minutes of CPU).
	maxServiceInstructions = 10_000_000
	// minServiceIntervalCycles keeps the per-interval accounting work
	// amortized over a sensible window.
	minServiceIntervalCycles = 100
	// maxServiceWorkloads bounds the workload population of one sweep cell.
	maxServiceWorkloads = 64
	// maxServicePRBEntries bounds the Pending Request Buffer size.
	maxServicePRBEntries = 1 << 20
)

// checkWorkSize validates the shared simulation-size fields.
func checkWorkSize(instructions, interval uint64, workloads int) error {
	if instructions > maxServiceInstructions {
		return badRequestf("instructions_per_core = %d exceeds the %d limit", instructions, maxServiceInstructions)
	}
	if interval != 0 && interval < minServiceIntervalCycles {
		return badRequestf("interval_cycles = %d below the %d minimum", interval, minServiceIntervalCycles)
	}
	if workloads < 0 || workloads > maxServiceWorkloads {
		return badRequestf("workloads = %d out of range (0..%d)", workloads, maxServiceWorkloads)
	}
	return nil
}

// resolveWorkload turns the request's workload description into a Workload.
func (r *EstimateRequest) resolveWorkload() (Workload, error) {
	if r.Scenario != "" {
		if len(r.Benchmarks) > 0 {
			return Workload{}, badRequestf("scenario and benchmarks are mutually exclusive")
		}
		if r.Mix != "" {
			return Workload{}, badRequestf("scenario and mix are mutually exclusive")
		}
	}
	if len(r.Benchmarks) > 0 {
		if len(r.Benchmarks) > maxServiceCores {
			return Workload{}, badRequestf("%d benchmarks exceeds the %d-core limit", len(r.Benchmarks), maxServiceCores)
		}
		wl := Workload{ID: "request"}
		for _, name := range r.Benchmarks {
			b, err := workload.ByName(name)
			if err != nil {
				return Workload{}, badRequestf("%v", err)
			}
			wl.Benchmarks = append(wl.Benchmarks, b)
		}
		return wl, nil
	}
	cores := r.Cores
	if cores == 0 {
		cores = 4
	}
	if cores < 0 || cores > maxServiceCores {
		return Workload{}, badRequestf("cores = %d out of range (1..%d)", cores, maxServiceCores)
	}
	if r.Scenario != "" {
		sc, err := workload.ScenarioByName(r.Scenario)
		if err != nil {
			return Workload{}, badRequestErr(err)
		}
		wl, err := sc.Workload(cores)
		if err != nil {
			return Workload{}, badRequestf("%v", err)
		}
		return wl, nil
	}
	mixName := r.Mix
	if mixName == "" {
		mixName = "H"
	}
	mixList, err := experiments.ParseMixList(mixName)
	if err != nil || len(mixList) != 1 {
		return Workload{}, badRequestf("unknown mix %q (want H, M, L, HHML, HMML or HMLL)", r.Mix)
	}
	ws, err := workload.Generate(workload.GenerateOptions{
		Cores: cores, Mix: mixList[0], Count: 1, Seed: r.Seed,
	})
	if err != nil {
		return Workload{}, badRequestf("%v", err)
	}
	return ws[0], nil
}

// buildAccountant instantiates the requested accounting technique.
func buildAccountant(technique string, cores, prbEntries int) (Accountant, error) {
	switch technique {
	case "GDP":
		return NewGDP(cores, prbEntries)
	case "GDP-O":
		return NewGDPO(cores, prbEntries)
	case "ITCA":
		return NewITCA(cores)
	case "PTCA":
		return NewPTCA(cores)
	case "ASM":
		return NewASM(cores, 0)
	default:
		return nil, badRequestf("unknown technique %q (want GDP, GDP-O, ITCA, PTCA or ASM)", technique)
	}
}

// Estimate answers one estimation query: it resolves the workload, attaches
// the requested accounting technique, streams the shared-mode simulation
// (intervals are reduced on the fly, never accumulated) and reports the
// instruction-weighted private-performance estimates per core. Client-side
// problems return a *RequestError; cancellation of ctx aborts the simulation
// at the next interval boundary.
func (e *Engine) Estimate(ctx context.Context, req *EstimateRequest) (*EstimateResponse, error) {
	if req == nil {
		return nil, badRequestf("empty request")
	}
	p, err := req.validate()
	if err != nil {
		return nil, err
	}
	return e.runEstimate(ctx, p)
}

// validate checks the request against the service work-size limits and
// resolves it into estimateParams. It runs no simulation, which makes it the
// fuzzable front half of Engine.Estimate.
func (r *EstimateRequest) validate() (estimateParams, error) {
	if r.APIVersion != "" && r.APIVersion != APIVersion {
		return estimateParams{}, badRequestf("unsupported api_version %q (this server speaks %q)", r.APIVersion, APIVersion)
	}
	if err := checkWorkSize(r.InstructionsPerCore, r.IntervalCycles, 0); err != nil {
		return estimateParams{}, err
	}
	// PRBEntries is range-checked in runEstimate (after defaulting), which
	// every entry point — Estimate, RunScenario, Replay — flows through.
	wl, err := r.resolveWorkload()
	if err != nil {
		return estimateParams{}, err
	}
	return estimateParams{
		workload:            wl,
		technique:           r.Technique,
		prbEntries:          r.PRBEntries,
		instructionsPerCore: r.InstructionsPerCore,
		intervalCycles:      r.IntervalCycles,
		seed:                r.Seed,
		maxCycles:           r.MaxCycles,
	}, nil
}

// estimateParams is the resolved form of one estimation run, shared by
// Engine.Estimate, Engine.RunScenario and Engine.Replay. Zero values of
// technique, prbEntries, instructionsPerCore and intervalCycles select the
// defaults (GDP-O, 32, and the Engine scale).
type estimateParams struct {
	workload            Workload
	technique           string
	prbEntries          int
	instructionsPerCore uint64
	intervalCycles      uint64
	seed                int64
	maxCycles           uint64
	// sources, when non-empty, replays externally supplied instruction
	// streams (one per core) instead of generating the workload's traces.
	sources []TraceSource
}

// runEstimate executes one estimation run and reduces its interval stream to
// per-core instruction-weighted estimates.
func (e *Engine) runEstimate(ctx context.Context, p estimateParams) (*EstimateResponse, error) {
	cores := p.workload.Cores()
	if cores == 0 {
		return nil, badRequestf("empty workload")
	}
	if len(p.sources) > 0 && len(p.sources) != cores {
		return nil, badRequestf("%d trace sources for %d cores", len(p.sources), cores)
	}

	technique := p.technique
	if technique == "" {
		technique = "GDP-O"
	}
	prb := p.prbEntries
	if prb == 0 {
		prb = 32
	}
	if prb < 0 || prb > maxServicePRBEntries {
		return nil, badRequestf("prb_entries = %d out of range (1..%d)", prb, maxServicePRBEntries)
	}
	acct, err := buildAccountant(technique, cores, prb)
	if err != nil {
		return nil, err
	}

	scale := e.Scale()
	instructions := p.instructionsPerCore
	if instructions == 0 {
		instructions = scale.InstructionsPerCore
	}
	interval := p.intervalCycles
	if interval == 0 {
		interval = scale.IntervalCycles
	}

	// Reduce the stream in place: per core, the instruction-weighted mean of
	// the interval estimates. DiscardIntervals keeps the run's memory O(cores)
	// regardless of its length.
	type acc struct {
		weighted float64
		weight   float64
		count    int
	}
	sums := make([]acc, cores)
	res, err := e.Run(ctx, SimOptions{
		Config:              config.ScaledConfig(cores),
		Workload:            p.workload,
		InstructionsPerCore: instructions,
		IntervalCycles:      interval,
		Seed:                p.seed,
		Sources:             p.sources,
		Accountants:         []Accountant{acct},
		MaxCycles:           p.maxCycles,
		DiscardIntervals:    true,
		OnInterval: func(rec IntervalRecord) error {
			if rec.Shared.Instructions == 0 {
				return nil
			}
			est, ok := rec.Estimates[technique]
			if !ok || est.PrivateCPI <= 0 {
				return nil
			}
			w := float64(rec.Shared.Instructions)
			sums[rec.Core].weighted += est.PrivateCPI * w
			sums[rec.Core].weight += w
			sums[rec.Core].count++
			return nil
		},
	})
	if err != nil {
		return nil, err
	}

	out := &EstimateResponse{
		APIVersion: APIVersion,
		Workload:   p.workload.ID,
		Technique:  technique,
		Cycles:     res.Cycles,
	}
	for core := 0; core < cores; core++ {
		ce := CoreEstimate{
			Core:      core,
			Benchmark: p.workload.Benchmarks[core].Name,
			SharedCPI: res.SampleStats[core].CPI(),
			Intervals: sums[core].count,
		}
		if ce.SharedCPI > 0 {
			ce.SharedIPC = 1 / ce.SharedCPI
		}
		if sums[core].weight > 0 {
			ce.EstimatedPrivateCPI = sums[core].weighted / sums[core].weight
			ce.EstimatedPrivateIPC = 1 / ce.EstimatedPrivateCPI
			ce.EstimatedSlowdown = ce.SharedCPI / ce.EstimatedPrivateCPI
		}
		out.Cores = append(out.Cores, ce)
	}
	return out, nil
}

// SweepRequest asks for a user-defined experiment grid; it is the JSON face
// of SweepOptions.
type SweepRequest struct {
	APIVersion string   `json:"api_version,omitempty"`
	CoreCounts []int    `json:"core_counts,omitempty"`
	Mixes      []string `json:"mixes,omitempty"`
	PRBSizes   []int    `json:"prb_sizes,omitempty"`
	Techniques []string `json:"techniques,omitempty"`
	Policies   []string `json:"policies,omitempty"`
	// Scenarios adds one accuracy cell per (cores, scenario, PRB size)
	// combination evaluating the named scenario workloads (see
	// GET /v1/scenarios).
	Scenarios           []string `json:"scenarios,omitempty"`
	Workloads           int      `json:"workloads,omitempty"`
	InstructionsPerCore uint64   `json:"instructions_per_core,omitempty"`
	IntervalCycles      uint64   `json:"interval_cycles,omitempty"`
	Seed                int64    `json:"seed,omitempty"`
	// Checkpoint, when non-nil, turns on checkpointed warmup sharing for the
	// grid's accuracy and scenario cells. Rows are byte-identical with or
	// without it; only the sweep's wall-clock changes. Operational note:
	// checkpoint blobs are memoized in the serving Engine's result cache,
	// which holds entries for the life of the process — each distinct
	// (workload, seed, config, warmup, accountant-set) prefix is retained.
	// A shared deployment that lets untrusted clients vary those fields
	// freely should run with a disk-backed cache and periodic restarts, or
	// leave the knob to trusted callers (eviction is a ROADMAP item).
	Checkpoint *SweepCheckpointRequest `json:"checkpoint,omitempty"`
	// Workers, when non-empty, shards the grid across the listed remote
	// `gdpsim serve` workers (base URLs; bare host:port implies http://)
	// instead of the local pool. Rows are byte-identical either way.
	Workers []string `json:"workers,omitempty"`
}

// maxServiceWorkers bounds the fleet size one sweep request may name.
const maxServiceWorkers = 64

// SweepCheckpointRequest is the warmup-sharing knob of a sweep request.
type SweepCheckpointRequest struct {
	// WarmupIntervals is the shared warmup prefix length in accounting
	// intervals (1..maxServiceWarmupIntervals).
	WarmupIntervals int `json:"warmup_intervals"`
}

// maxServiceWarmupIntervals bounds the warmup prefix one request may demand:
// the prefix simulation costs warmup_intervals x interval_cycles cycles even
// when every cell later falls back to a cold run.
const maxServiceWarmupIntervals = 4096

// SweepResponse is the outcome of a sweep query.
type SweepResponse struct {
	APIVersion string     `json:"api_version"`
	Cells      int        `json:"cells"`
	Rows       []SweepRow `json:"rows"`
}

// maxSweepCells bounds the grid size one request may fan out.
const maxSweepCells = 512

// validate checks the request against the service work-size limits and
// resolves it into SweepOptions. It runs no simulation, which makes it the
// fuzzable front half of EvaluateSweep.
func (req *SweepRequest) validate() (SweepOptions, error) {
	if req.APIVersion != "" && req.APIVersion != APIVersion {
		return SweepOptions{}, badRequestf("unsupported api_version %q (this server speaks %q)", req.APIVersion, APIVersion)
	}
	opts := SweepOptions{
		CoreCounts:          req.CoreCounts,
		PRBSizes:            req.PRBSizes,
		Techniques:          req.Techniques,
		Policies:            req.Policies,
		Scenarios:           req.Scenarios,
		Workloads:           req.Workloads,
		InstructionsPerCore: req.InstructionsPerCore,
		IntervalCycles:      req.IntervalCycles,
		Seed:                req.Seed,
	}
	if err := checkWorkSize(req.InstructionsPerCore, req.IntervalCycles, req.Workloads); err != nil {
		return SweepOptions{}, err
	}
	for _, cores := range req.CoreCounts {
		if cores <= 0 || cores > maxServiceCores {
			return SweepOptions{}, badRequestf("core count %d out of range (1..%d)", cores, maxServiceCores)
		}
	}
	for _, prb := range req.PRBSizes {
		if prb <= 0 || prb > maxServicePRBEntries {
			return SweepOptions{}, badRequestf("prb size %d out of range (1..%d)", prb, maxServicePRBEntries)
		}
	}
	// An unknown technique, policy or scenario would otherwise be silently
	// skipped by the study drivers, yielding a 200 with empty rows.
	for _, name := range req.Techniques {
		if !slices.Contains(experiments.TechniqueNames, name) {
			return SweepOptions{}, badRequestf("unknown technique %q (want one of %v)", name, experiments.TechniqueNames)
		}
	}
	for _, name := range req.Policies {
		if !slices.Contains(experiments.PolicyNames, name) {
			return SweepOptions{}, badRequestf("unknown policy %q (want one of %v)", name, experiments.PolicyNames)
		}
	}
	for _, name := range req.Scenarios {
		if _, err := workload.ScenarioByName(name); err != nil {
			return SweepOptions{}, badRequestErr(err)
		}
	}
	if req.Checkpoint != nil {
		w := req.Checkpoint.WarmupIntervals
		if w < 1 || w > maxServiceWarmupIntervals {
			return SweepOptions{}, badRequestf("checkpoint.warmup_intervals = %d out of range (1..%d)", w, maxServiceWarmupIntervals)
		}
		opts.WarmupIntervals = w
	}
	if len(req.Workers) > maxServiceWorkers {
		return SweepOptions{}, badRequestf("%d workers exceeds the %d-worker limit", len(req.Workers), maxServiceWorkers)
	}
	if _, err := dispatch.ParseWorkers(req.Workers); err != nil {
		return SweepOptions{}, badRequestErr(err)
	}
	if len(req.Mixes) > 0 {
		mixes, err := experiments.ParseMixList(strings.Join(req.Mixes, ","))
		if err != nil {
			return SweepOptions{}, badRequestf("%v", err)
		}
		opts.Mixes = mixes
	}
	// Account for the grid defaults SweepOptions fills in (cores {4},
	// mixes {H, M, L} — only for grids without scenario cells — and PRB
	// sizes {32}) when sizing the request. mixN comes from the parsed
	// opts.Mixes, not len(req.Mixes): ParseMixList drops whitespace-only
	// entries, and a request whose mixes all parse away gets the 3-mix
	// default — counting the raw entries would undersize the grid.
	coreN, mixN, prbN := len(req.CoreCounts), len(opts.Mixes), len(req.PRBSizes)
	if coreN == 0 {
		coreN = 1
	}
	if mixN == 0 && len(req.Scenarios) == 0 {
		mixN = 3
	}
	if prbN == 0 {
		prbN = 1
	}
	cells := coreN * mixN * prbN
	if len(req.Policies) > 0 {
		cells += coreN * mixN
	}
	cells += coreN * len(req.Scenarios) * prbN
	if cells > maxSweepCells {
		return SweepOptions{}, badRequestf("grid of %d cells exceeds the %d-cell limit", cells, maxSweepCells)
	}
	return opts, nil
}

// EvaluateSweep answers one sweep query on the Engine's worker pool and
// shared cache.
func (e *Engine) EvaluateSweep(ctx context.Context, req *SweepRequest) (*SweepResponse, error) {
	if req == nil {
		return nil, badRequestf("empty request")
	}
	opts, err := req.validate()
	if err != nil {
		return nil, err
	}
	var res *SweepResult
	if len(req.Workers) > 0 {
		res, err = e.SweepWorkers(ctx, opts, req.Workers)
	} else {
		res, err = e.Sweep(ctx, opts)
	}
	if err != nil {
		return nil, err
	}
	return &SweepResponse{APIVersion: APIVersion, Cells: res.Cells, Rows: res.Rows}, nil
}

// ScenarioInfo is one row of a ScenariosResponse.
type ScenarioInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Class       string `json:"class"`
}

// ScenariosResponse lists the named scenarios the service can run.
type ScenariosResponse struct {
	APIVersion string         `json:"api_version"`
	Scenarios  []ScenarioInfo `json:"scenarios"`
}

// Server exposes an Engine over HTTP/JSON:
//
//	POST /v1/estimate   EstimateRequest  -> EstimateResponse
//	POST /v1/sweep      SweepRequest     -> SweepResponse
//	GET  /v1/scenarios  ScenariosResponse (the named scenario registry)
//	GET  /healthz       liveness, build identity + cache statistics
//	GET  /metrics       Prometheus text exposition of the Engine's registry
//
// Error responses carry {"error": "..."} with status 400 (malformed or
// invalid request), 405 (wrong method), 503 (concurrent-request limit
// reached) or 500. A request whose client disappears mid-simulation is
// aborted at the next interval boundary via the request context.
//
// Every endpoint is instrumented: request counts by status code, latency
// histograms and in-flight gauges land in the Engine's metric registry under
// the gdpsim_http_* families, and each request emits one structured access
// log record (WithLogger installs the sink).
//
// Server is an http.Handler; wrap it in an http.Server for timeouts and
// graceful shutdown (see cmd/gdpsim's serve subcommand).
type Server struct {
	engine *Engine
	sem    chan struct{}
	mux    *http.ServeMux
	// maxBodyBytes bounds a request body; requests beyond it fail decoding.
	maxBodyBytes int64
	// logger receives one record per request plus lifecycle events; defaults
	// to a discard handler.
	logger *slog.Logger
	// pprofEnabled mounts net/http/pprof under /debug/pprof/.
	pprofEnabled bool
	metrics      *httpServerMetrics
	// batches, cellSem and dispatchSrv form the worker side of the
	// distributed dispatch protocol (see service_cells.go).
	batches     *batchRegistry
	cellSem     chan struct{}
	dispatchSrv *dispatchServerMetrics
	// coalesce merges concurrent identical estimate requests into one
	// simulation (see service_coalesce.go); coalesceWindow/coalesceMax are
	// its WithCoalesce configuration, applied at construction.
	coalesce       *coalescer
	coalesceWindow time.Duration
	coalesceMax    int
}

// httpServerMetrics holds the HTTP-layer metric handles, resolved once at
// server construction so the per-request path performs no registry lookups
// beyond the label resolution of its own series.
type httpServerMetrics struct {
	requests   *telemetry.CounterVec
	latency    *telemetry.HistogramVec
	inFlight   *telemetry.GaugeVec
	shed       *telemetry.Counter
	clientGone *telemetry.Counter
}

// newHTTPServerMetrics registers the HTTP metric families on r.
func newHTTPServerMetrics(r *telemetry.Registry) *httpServerMetrics {
	return &httpServerMetrics{
		requests: r.CounterVec("gdpsim_http_requests_total",
			"HTTP requests by endpoint and status code.", "endpoint", "code"),
		latency: r.HistogramVec("gdpsim_http_request_seconds",
			"HTTP request latency in seconds, by endpoint.", nil, "endpoint"),
		inFlight: r.GaugeVec("gdpsim_http_in_flight_requests",
			"HTTP requests currently being served, by endpoint.", "endpoint"),
		shed: r.Counter("gdpsim_http_shed_total",
			"Requests rejected with 503 because the concurrent-request limit was reached."),
		clientGone: r.Counter("gdpsim_http_client_gone_total",
			"Requests whose client disappeared mid-simulation (status 499)."),
	}
}

// ServerOption configures a Server.
type ServerOption func(*Server) error

// WithMaxConcurrent bounds how many estimation/sweep requests run
// simultaneously (default 2×NumCPU as reported by the runtime; healthz is
// never limited). Excess requests receive 503 Service Unavailable.
func WithMaxConcurrent(n int) ServerOption {
	return func(s *Server) error {
		if n < 1 {
			return fmt.Errorf("gdp: WithMaxConcurrent(%d): need at least 1", n)
		}
		s.sem = make(chan struct{}, n)
		return nil
	}
}

// WithLogger installs a structured logger. Every request emits one access
// record (method, endpoint, status, latency and — for estimation/sweep
// requests — the 12-character spec-key prefix identifying the request in the
// result cache); server lifecycle events land on the same logger.
func WithLogger(l *slog.Logger) ServerOption {
	return func(s *Server) error {
		if l == nil {
			return fmt.Errorf("gdp: WithLogger(nil)")
		}
		s.logger = l
		return nil
	}
}

// WithPprof mounts net/http/pprof under /debug/pprof/. Off by default: the
// profile endpoints expose process internals and belong behind an operator
// flag, not on every deployment.
func WithPprof() ServerOption {
	return func(s *Server) error {
		s.pprofEnabled = true
		return nil
	}
}

// NewServer wraps an Engine as an HTTP handler. A nil engine selects
// DefaultEngine().
func NewServer(engine *Engine, opts ...ServerOption) (*Server, error) {
	if engine == nil {
		engine = DefaultEngine()
	}
	if engine.registry == nil {
		// Zero-value Engines (struct literals in tests) skip NewEngine; give
		// them a registry so /metrics and the instrumentation still work.
		engine.initTelemetry()
	}
	s := &Server{
		engine:       engine,
		maxBodyBytes: 1 << 20,
		logger:       slog.New(slog.DiscardHandler),
		metrics:      newHTTPServerMetrics(engine.registry),
		batches:      newBatchRegistry(),
		dispatchSrv:  newDispatchServerMetrics(engine.registry),
	}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if s.sem == nil {
		s.sem = make(chan struct{}, 2*defaultConcurrency())
	}
	// Dispatched cells fan out on their own semaphore sized like the engine's
	// worker pool: a batch occupies one request slot while its cells use the
	// machine's cores.
	cellJobs := engine.jobs
	if cellJobs <= 0 {
		cellJobs = defaultConcurrency()
	}
	s.cellSem = make(chan struct{}, cellJobs)
	s.coalesce = newCoalescer(s.coalesceWindow, s.coalesceMax, newCoalesceMetrics(engine.registry))
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux.HandleFunc("/v1/estimate", s.instrument("/v1/estimate", s.handleEstimate))
	s.mux.HandleFunc("/v1/sweep", s.instrument("/v1/sweep", handleJSON(s, s.engine.EvaluateSweep)))
	s.mux.HandleFunc("/v1/scenarios", s.instrument("/v1/scenarios", s.handleScenarios))
	s.mux.HandleFunc("/v1/cells", s.instrument("/v1/cells", s.handleCellsPost))
	s.mux.HandleFunc("/v1/cells/", s.instrument("/v1/cells/{id}", s.handleCellStream))
	if s.pprofEnabled {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// statusRecorder captures the status code a handler writes so the access log
// and the request counter can label by it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// requestInfo carries per-request annotations from the handler back to the
// instrument wrapper (currently the result-cache spec-key prefix, set by
// handleJSON once the body has decoded).
type requestInfo struct {
	specKey string
}

type requestInfoKey struct{}

// instrument wraps a handler with the per-endpoint metrics and the access
// log: an in-flight gauge around the call, then a latency observation, a
// (endpoint, code) request count and one structured log record.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	requests := s.metrics.requests
	latency := s.metrics.latency.With(endpoint)
	inFlight := s.metrics.inFlight.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		info := &requestInfo{}
		r = r.WithContext(context.WithValue(r.Context(), requestInfoKey{}, info))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		inFlight.Inc()
		start := time.Now()
		h(rec, r)
		elapsed := time.Since(start)
		inFlight.Dec()
		latency.Observe(elapsed.Seconds())
		requests.With(endpoint, strconv.Itoa(rec.status)).Inc()
		attrs := make([]slog.Attr, 0, 5)
		attrs = append(attrs,
			slog.String("method", r.Method),
			slog.String("endpoint", endpoint),
			slog.Int("status", rec.status),
			slog.Duration("latency", elapsed),
		)
		if info.specKey != "" {
			attrs = append(attrs, slog.String("spec_key", info.specKey))
		}
		s.logger.LogAttrs(context.Background(), slog.LevelInfo, "request", attrs...)
	}
}

// annotateSpecKey records the request's cache spec-key prefix for the access
// log, letting operators correlate a slow request with the cache entry (and
// the bench reports) it corresponds to.
func annotateSpecKey(ctx context.Context, spec any) {
	info, ok := ctx.Value(requestInfoKey{}).(*requestInfo)
	if !ok {
		return
	}
	if key, err := runner.SpecKey(spec); err == nil && len(key) >= 12 {
		info.specKey = key[:12]
	}
}

// handleScenarios lists the scenario registry. The listing is static and
// cheap, so it bypasses the concurrency limit like healthz.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "scenarios is GET-only")
		return
	}
	resp := ScenariosResponse{APIVersion: APIVersion}
	for _, sc := range s.engine.Scenarios() {
		resp.Scenarios = append(resp.Scenarios, ScenarioInfo{
			Name:        sc.Name,
			Description: sc.Description,
			Class:       sc.Class.String(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// handleHealthz reports liveness, build identity and cache statistics. The
// flat cache_hits/cache_misses fields predate the per-layer split and stay
// for compatibility; "cache" carries the full breakdown.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "healthz is GET-only")
		return
	}
	stats := s.engine.Cache().DetailedStats()
	body := map[string]any{
		"status":         "ok",
		"api_version":    APIVersion,
		"git_revision":   perf.GitRevision(),
		"schema_version": perf.SchemaVersion,
		"cache_hits":     stats.MemoryHits + stats.DiskHits + stats.InflightJoins,
		"cache_misses":   stats.Misses,
		"cache":          stats,
	}
	if fleet := s.engine.FleetHealth(); fleet != nil {
		body["fleet"] = fleet
	}
	writeJSON(w, http.StatusOK, body)
}

// handleMetrics exposes the Engine's registry in the Prometheus text format
// (version 0.0.4). A scrape is a cheap read of atomic counters, so like
// healthz it bypasses the concurrency limit — a saturated worker pool must
// not blind the monitoring that would detect the saturation.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "metrics is GET-only")
		return
	}
	w.Header().Set("Content-Type", telemetry.ContentType)
	_ = s.engine.MetricsRegistry().WritePrometheus(w)
}

// statusClientClosedRequest is nginx's conventional status for a client that
// went away before the response; it only ever reaches logs and tests, never
// a real client.
const statusClientClosedRequest = 499

// errServerBusy reports that the concurrent-request limit was reached; the
// HTTP layer maps it to 503 and counts the shed.
var errServerBusy = errors.New("gdp: concurrent-request limit reached")

// writeCallResult maps an Engine call's outcome to the HTTP response: 200,
// 503 (shed), 499 (client gone), 400 (request errors) or 500.
func (s *Server) writeCallResult(w http.ResponseWriter, resp any, err error) {
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, errServerBusy):
		s.metrics.shed.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "concurrent-request limit reached")
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away (or timed out) mid-simulation; the run was
		// aborted at an interval boundary. Nobody is listening for the
		// body, so only a status for the access log.
		s.metrics.clientGone.Inc()
		w.WriteHeader(statusClientClosedRequest)
	default:
		var reqErr *RequestError
		if errors.As(err, &reqErr) {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// handleJSON adapts an Engine method to a POST JSON endpoint with the
// server's concurrency limit and error mapping.
func handleJSON[Req any, Resp any](s *Server, call func(context.Context, *Req) (*Resp, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.writeCallResult(w, nil, errServerBusy)
			return
		}
		req := new(Req)
		body := http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
		if err := json.NewDecoder(body).Decode(req); err != nil {
			writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
			return
		}
		annotateSpecKey(r.Context(), req)
		resp, err := call(r.Context(), req)
		s.writeCallResult(w, resp, err)
	}
}

// handleEstimate is the coalescing POST /v1/estimate endpoint. Unlike
// handleJSON it does not hold a concurrency slot for the whole request:
// the coalescer charges one slot per *simulation* (the group leader), so a
// burst of identical requests costs one slot instead of shedding at the
// limiter before it can coalesce. Joining an in-flight group is free.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	req := new(EstimateRequest)
	body := http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	if err := json.NewDecoder(body).Decode(req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	annotateSpecKey(r.Context(), req)
	resp, err := s.coalescedEstimate(r.Context(), req)
	s.writeCallResult(w, resp, err)
}

// defaultConcurrency is the machine-derived concurrent-request default.
func defaultConcurrency() int {
	if n := runtime.NumCPU(); n > 1 {
		return n
	}
	return 1
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes a JSON error body.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
