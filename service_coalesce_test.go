package gdp

import (
	"net/http"
	"sync"
	"testing"
	"time"
)

// coalesceBody is a small identical estimate request used by every coalescer
// test.
const coalesceBody = `{"cores": 2, "mix": "H", "instructions_per_core": 2000, "interval_cycles": 2000}`

// postConcurrent fires n identical POSTs at once and returns the recorded
// bodies (failing the test on any non-200).
func postConcurrent(t *testing.T, srv *Server, body string, n int) []string {
	t.Helper()
	var wg sync.WaitGroup
	out := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := postJSON(t, srv, "/v1/estimate", body)
			if rec.Code != http.StatusOK {
				t.Errorf("request %d: status = %d, body = %s", i, rec.Code, rec.Body.String())
				return
			}
			out[i] = rec.Body.String()
		}(i)
	}
	wg.Wait()
	return out
}

// TestCoalesceIdenticalRequestsOneSimulation is the coalescer acceptance
// check: N identical concurrent estimates inside one batching window run
// exactly one simulation, and every caller receives the same response.
func TestCoalesceIdenticalRequestsOneSimulation(t *testing.T) {
	// A generous window: all four requests are in flight within microseconds,
	// the leader holds the simulation for up to a second.
	srv := testServer(t, WithCoalesce(time.Second, 0))
	const n = 4
	bodies := postConcurrent(t, srv, coalesceBody, n)
	for i := 1; i < n; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("response %d differs from leader's:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	m := scrape(t, srv)
	if got := metricValue(t, m, "gdpsim_sim_runs_total"); got != 1 {
		t.Errorf("sim runs = %v, want 1 (coalesced)", got)
	}
	if got := metricValue(t, m, "gdpsim_coalesce_joined_total"); got != n-1 {
		t.Errorf("coalesce joined = %v, want %d", got, n-1)
	}
	if got := metricValue(t, m, "gdpsim_coalesce_batches_total", `reason="deadline"`); got != 1 {
		t.Errorf("deadline batches = %v, want 1", got)
	}
}

// TestCoalesceSizeFlush pins the size-or-deadline contract: with a window far
// longer than the test, maxBatch waiters must release the batch immediately.
func TestCoalesceSizeFlush(t *testing.T) {
	srv := testServer(t, WithCoalesce(time.Minute, 3))
	start := time.Now()
	postConcurrent(t, srv, coalesceBody, 3)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("batch took %v: size flush did not fire before the minute window", elapsed)
	}
	m := scrape(t, srv)
	if got := metricValue(t, m, "gdpsim_coalesce_batches_total", `reason="size"`); got != 1 {
		t.Errorf("size-flushed batches = %v, want 1", got)
	}
	if got := metricValue(t, m, "gdpsim_sim_runs_total"); got != 1 {
		t.Errorf("sim runs = %v, want 1", got)
	}
}

// TestCoalesceDistinctRequestsDoNotShare checks the grouping key: requests
// that differ (here by seed) in the same window must each run their own
// simulation.
func TestCoalesceDistinctRequestsDoNotShare(t *testing.T) {
	srv := testServer(t, WithCoalesce(100*time.Millisecond, 0))
	var wg sync.WaitGroup
	for _, body := range []string{
		`{"cores": 2, "mix": "H", "seed": 1, "instructions_per_core": 2000, "interval_cycles": 2000}`,
		`{"cores": 2, "mix": "H", "seed": 2, "instructions_per_core": 2000, "interval_cycles": 2000}`,
	} {
		wg.Add(1)
		go func(body string) {
			defer wg.Done()
			if rec := postJSON(t, srv, "/v1/estimate", body); rec.Code != http.StatusOK {
				t.Errorf("status = %d, body = %s", rec.Code, rec.Body.String())
			}
		}(body)
	}
	wg.Wait()
	m := scrape(t, srv)
	if got := metricValue(t, m, "gdpsim_sim_runs_total"); got != 2 {
		t.Errorf("sim runs = %v, want 2 (distinct requests must not share)", got)
	}
	if got := metricValue(t, m, "gdpsim_coalesce_joined_total"); got != 0 {
		t.Errorf("coalesce joined = %v, want 0", got)
	}
}

// TestCoalesceSequentialRequestsRunSeparately checks group retirement: a
// second identical request arriving after the first completed gets a fresh
// simulation, not a stale shared group.
func TestCoalesceSequentialRequestsRunSeparately(t *testing.T) {
	srv := testServer(t) // default: zero window, pure in-flight coalescing
	for i := 0; i < 2; i++ {
		if rec := postJSON(t, srv, "/v1/estimate", coalesceBody); rec.Code != http.StatusOK {
			t.Fatalf("request %d: status = %d, body = %s", i, rec.Code, rec.Body.String())
		}
	}
	m := scrape(t, srv)
	if got := metricValue(t, m, "gdpsim_sim_runs_total"); got != 2 {
		t.Errorf("sim runs = %v, want 2 (sequential requests)", got)
	}
}

// TestWithCoalesceRejectsNegatives pins the option's validation.
func TestWithCoalesceRejectsNegatives(t *testing.T) {
	if _, err := NewServer(nil, WithCoalesce(-time.Second, 0)); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := NewServer(nil, WithCoalesce(0, -1)); err == nil {
		t.Error("negative maxBatch accepted")
	}
}
