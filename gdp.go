// Package gdp is the public API of this reproduction of "GDP: Using Dataflow
// Properties to Accurately Estimate Interference-Free Performance at Runtime"
// (Jahre & Eeckhout, HPCA 2018).
//
// The central type is Engine: a long-lived service object constructed once
// via functional options (WithCache, WithJobs, WithProgress, WithScale) that
// owns the worker-pool configuration and the result cache and exposes
// context-first methods — Engine.Run, Engine.Stream, Engine.AccuracyStudy,
// Engine.PartitioningStudy, Engine.Sweep, Engine.Figure3, Engine.Figure7 and
// Engine.Estimate. Cancellation reaches the simulator's cycle loop (polled at
// interval boundaries), and Engine.Stream yields interval records as the
// simulation advances instead of accumulating them. Server wraps an Engine
// as an HTTP/JSON service (POST /v1/estimate, POST /v1/sweep, GET /healthz);
// `gdpsim serve` runs it from the command line.
//
// Around the Engine the package re-exports the stable surface of the
// internal packages so that downstream users never import internal/...
// directly:
//
//   - CMP configuration (Table I parameter sets),
//   - the synthetic benchmark suite and multi-programmed workload generator,
//   - the workload scenario registry (named patterns beyond the paper's
//     mixes; Engine.Scenarios, Engine.RunScenario) and the versioned binary
//     trace format that records and replays any instruction stream
//     byte-identically (TraceWriter, TraceReplayer, RecordBenchmarkTrace),
//   - the simulation driver (shared-mode and private-mode runs),
//   - the accounting techniques (GDP, GDP-O, ITCA, PTCA, ASM),
//   - the LLC partitioning policies (LRU, UCP, MCP, MCP-O),
//   - the experiment drivers that regenerate the paper's tables and figures,
//     and
//   - the parallel experiment runner (worker-pool fan-out, result caching,
//     progress reporting and grid sweeps).
//
// The batch-style package-level functions (Run, AccuracyStudy, Sweep, ...)
// are deprecated shims over a process-wide default Engine; new code should
// construct an Engine.
//
// See examples/ for runnable programs built only on this package.
package gdp

import (
	"context"
	"io"

	"repro/internal/accounting"
	"repro/internal/config"
	gdpcore "repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Configuration types.
type (
	// CMPConfig describes the simulated chip multiprocessor (Table I).
	CMPConfig = config.CMPConfig
	// DRAMKind selects the DRAM interface generation.
	DRAMKind = config.DRAMKind
)

// DRAM interface generations.
const (
	DDR2 = config.DDR2
	DDR4 = config.DDR4
)

// PaperConfig returns the Table I configuration for 2, 4 or 8 cores.
func PaperConfig(cores int) *CMPConfig { return config.PaperConfig(cores) }

// ScaledConfig returns the proportionally scaled configuration used for the
// short synthetic samples of this reproduction.
func ScaledConfig(cores int) *CMPConfig { return config.ScaledConfig(cores) }

// Workload types.
type (
	// Benchmark is one synthetic benchmark profile.
	Benchmark = workload.Benchmark
	// Workload is a multi-programmed benchmark combination, one per core.
	Workload = workload.Workload
	// MixKind selects how workloads are composed (H, M, L or mixed).
	MixKind = workload.MixKind
)

// Workload mixes.
const (
	MixH    = workload.MixH
	MixM    = workload.MixM
	MixL    = workload.MixL
	MixHHML = workload.MixHHML
	MixHMML = workload.MixHMML
	MixHMLL = workload.MixHMLL
)

// BenchmarkSuite returns the 52 synthetic benchmarks.
func BenchmarkSuite() []Benchmark { return workload.Suite() }

// BenchmarkByName looks a benchmark up by its SPEC-derived name.
func BenchmarkByName(name string) (Benchmark, error) { return workload.ByName(name) }

// GenerateWorkloads produces multi-programmed workloads.
func GenerateWorkloads(cores int, mix MixKind, count int, seed int64) ([]Workload, error) {
	return workload.Generate(workload.GenerateOptions{Cores: cores, Mix: mix, Count: count, Seed: seed})
}

// Accounting types.
type (
	// Accountant is a performance-accounting technique.
	Accountant = accounting.Accountant
	// AccountingEstimate is one private-mode performance estimate.
	AccountingEstimate = accounting.Estimate
	// DataflowUnit is the per-core GDP/GDP-O hardware unit (PRB + PCB + CPL).
	DataflowUnit = gdpcore.GDP
	// DataflowOptions configure a DataflowUnit.
	DataflowOptions = gdpcore.Options
)

// NewGDP creates the GDP accounting technique for a CMP with cores cores and
// the given Pending Request Buffer size (the paper uses 32).
func NewGDP(cores, prbEntries int) (Accountant, error) {
	return accounting.NewGDP(cores, prbEntries, false)
}

// NewGDPO creates the GDP-O variant (GDP plus overlap accounting).
func NewGDPO(cores, prbEntries int) (Accountant, error) {
	return accounting.NewGDP(cores, prbEntries, true)
}

// NewITCA creates the ITCA transparent baseline.
func NewITCA(cores int) (Accountant, error) { return accounting.NewITCA(cores) }

// NewPTCA creates the PTCA transparent baseline.
func NewPTCA(cores int) (Accountant, error) { return accounting.NewPTCA(cores) }

// NewASM creates the invasive ASM baseline with the given epoch length in
// cycles (0 selects the default).
func NewASM(cores int, epochLen uint64) (Accountant, error) {
	return accounting.NewASM(cores, epochLen, nil)
}

// NewDataflowUnit creates a bare GDP/GDP-O unit for direct use (for example
// to attach to a custom core model).
func NewDataflowUnit(opts DataflowOptions) (*DataflowUnit, error) { return gdpcore.New(opts) }

// Partitioning types.
type (
	// PartitionPolicy selects LLC way allocations at repartitioning intervals.
	PartitionPolicy = partition.Policy
	// CoreSnapshot is the per-core input to a partitioning decision.
	CoreSnapshot = partition.CoreSnapshot
)

// Partitioning policies.
var (
	// LRUPolicy never partitions (baseline sharing).
	LRUPolicy PartitionPolicy = partition.LRU{}
	// UCPPolicy is miss-minimizing utility-based cache partitioning.
	UCPPolicy PartitionPolicy = partition.UCP{}
	// MCPPolicy is the paper's model-based cache partitioning.
	MCPPolicy PartitionPolicy = partition.MCP{}
	// MCPOPolicy is MCP driven by GDP-O estimates.
	MCPOPolicy PartitionPolicy = partition.MCP{PolicyName: "MCP-O"}
)

// Simulation types.
type (
	// SimOptions configure a shared-mode simulation run.
	SimOptions = sim.Options
	// SimResult is the outcome of a shared-mode run.
	SimResult = sim.Result
	// IntervalRecord is one per-core, per-interval measurement.
	IntervalRecord = sim.IntervalRecord
	// PrivateReference is the interference-free ground truth of one benchmark.
	PrivateReference = sim.PrivateReference
	// Checkpoint is a serializable snapshot of a shared-mode simulation at an
	// interval boundary; forks from it are byte-identical to cold runs.
	Checkpoint = sim.Checkpoint
	// CheckpointOptions configure warmup sharing for studies and sweeps.
	CheckpointOptions = experiments.CheckpointOptions
)

// Checkpointing errors.
var (
	// ErrWarmupTooLong reports that a run ended before its checkpoint cycle.
	ErrWarmupTooLong = sim.ErrWarmupTooLong
	// ErrCheckpointMismatch reports that a checkpoint cannot seed a fork with
	// the given options; callers fall back to a cold run.
	ErrCheckpointMismatch = sim.ErrCheckpointMismatch
)

// Run executes a shared-mode simulation.
//
// Deprecated: use Engine.Run, which takes a context honored mid-simulation.
func Run(opts SimOptions) (*SimResult, error) {
	return DefaultEngine().Run(context.Background(), opts)
}

// RunPrivate executes a benchmark alone on the CMP, aligned on the supplied
// instruction sample points.
//
// Deprecated: use Engine.RunPrivate, which takes a context and exposes the
// run's cycle bound instead of always defaulting it.
func RunPrivate(cfg *CMPConfig, bench Benchmark, samplePoints []uint64, seed int64) (*PrivateReference, error) {
	return DefaultEngine().RunPrivate(context.Background(), cfg, bench, samplePoints, seed, 0)
}

// Metrics.

// STP computes system throughput from per-core private and shared CPIs.
func STP(privateCPI, sharedCPI []float64) (float64, error) {
	return metrics.STP(privateCPI, sharedCPI)
}

// ANTT computes the average normalized turnaround time.
func ANTT(privateCPI, sharedCPI []float64) (float64, error) {
	return metrics.ANTT(privateCPI, sharedCPI)
}

// Experiment drivers.
type (
	// StudyScale controls how much work the figure drivers do.
	StudyScale = experiments.StudyScale
	// AccuracyOptions configure one accuracy-study cell (Figures 3-5).
	AccuracyOptions = experiments.AccuracyOptions
	// AccuracyResult is the outcome of one accuracy-study cell.
	AccuracyResult = experiments.AccuracyResult
	// PartitioningOptions configure one partitioning-study cell (Figure 6).
	PartitioningOptions = experiments.PartitioningOptions
	// PartitioningResult is the outcome of one partitioning-study cell.
	PartitioningResult = experiments.PartitioningResult
	// SensitivityOptions configure the Figure 7 sweeps.
	SensitivityOptions = experiments.SensitivityOptions
	// SensitivityResult is one panel of Figure 7.
	SensitivityResult = experiments.SensitivityResult
	// Figure3Result covers Figures 3a and 3b.
	Figure3Result = experiments.Figure3Result
)

// DefaultScale returns the quick-run experiment scale.
func DefaultScale() StudyScale { return experiments.DefaultScale() }

// PaperScale returns a scale closer to the paper's workload population.
func PaperScale() StudyScale { return experiments.PaperScale() }

// AccuracyStudy runs one cell of the accounting-accuracy evaluation.
//
// Deprecated: use Engine.AccuracyStudy, which takes a context.
func AccuracyStudy(opts AccuracyOptions) (*AccuracyResult, error) {
	return DefaultEngine().AccuracyStudy(context.Background(), opts)
}

// PartitioningStudy runs one cell of the LLC-partitioning evaluation.
//
// Deprecated: use Engine.PartitioningStudy, which takes a context.
func PartitioningStudy(opts PartitioningOptions) (*PartitioningResult, error) {
	return DefaultEngine().PartitioningStudy(context.Background(), opts)
}

// Figure3 regenerates Figures 3a/3b for the given scale.
//
// Deprecated: use Engine.Figure3, which takes a context.
func Figure3(scale StudyScale) (*Figure3Result, error) {
	return DefaultEngine().Figure3(context.Background(), scale)
}

// Figure7 regenerates every panel of the sensitivity study.
//
// Deprecated: use Engine.Figure7, which takes a context.
func Figure7(opts SensitivityOptions) ([]*SensitivityResult, error) {
	return DefaultEngine().Figure7(context.Background(), opts)
}

// Experiment runner.
type (
	// ResultCache memoizes simulation cells across studies (in memory and,
	// for disk-backed caches, across processes).
	ResultCache = runner.Cache
	// RunnerProgress is one progress event of a study's worker pool.
	RunnerProgress = runner.Progress
	// ProgressFunc receives progress events.
	ProgressFunc = runner.ProgressFunc
	// SweepOptions describe a user-defined experiment grid.
	SweepOptions = experiments.SweepOptions
	// SweepResult is the outcome of a grid sweep.
	SweepResult = experiments.SweepResult
	// SweepRow is one flattened, export-ready result line of a sweep.
	SweepRow = experiments.SweepRow
	// ResultTable is a rectangular result set ready for CSV export.
	ResultTable = runner.Table
)

// Telemetry types.
type (
	// MetricsRegistry holds labeled metric families (counters, gauges,
	// histograms) and encodes them in the Prometheus text format; Server
	// exposes an Engine's registry as GET /metrics.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is one metric family in a JSON-ready point-in-time
	// copy of a registry (see MetricsRegistry.Snapshot).
	MetricsSnapshot = telemetry.FamilySnapshot
	// Instrumentation bundles the per-layer telemetry sinks a study threads
	// through the runner pool, the checkpoint layer and the simulator.
	Instrumentation = experiments.Instrumentation
	// CacheStats is the per-layer breakdown of result-cache activity.
	CacheStats = runner.CacheStats
)

// NewMetricsRegistry returns an empty telemetry registry for standalone use;
// Engines built by NewEngine already own one (Engine.MetricsRegistry).
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewInstrumentation registers the full experiment-layer metric set
// (runner pool, checkpoint layer, simulation counters) on r.
func NewInstrumentation(r *MetricsRegistry) *Instrumentation {
	return experiments.NewInstrumentation(r)
}

// NewResultCache returns an in-memory result cache.
func NewResultCache() *ResultCache { return runner.NewCache() }

// NewDiskResultCache returns a result cache that also persists entries under
// dir, so repeated processes reuse earlier simulations.
func NewDiskResultCache(dir string) (*ResultCache, error) { return runner.NewDiskCache(dir) }

// DefaultResultCache returns the process-wide cache every experiment driver
// uses unless its options name another one.
func DefaultResultCache() *ResultCache { return experiments.DefaultCache() }

// SetDefaultResultCache replaces the process-wide result cache (for example
// with a disk-backed one).
func SetDefaultResultCache(c *ResultCache) { experiments.SetDefaultCache(c) }

// ConsoleProgress returns a ProgressFunc that prints one line per completed
// simulation cell to w.
func ConsoleProgress(w io.Writer) ProgressFunc { return runner.ConsoleProgress(w) }

// WriteJSON writes v as indented JSON to w.
func WriteJSON(w io.Writer, v any) error { return runner.WriteJSON(w, v) }

// WriteJSONFile writes v as indented JSON to a file.
func WriteJSONFile(path string, v any) error { return runner.WriteJSONFile(path, v) }

// Sweep runs a user-defined experiment grid (cores × mixes × PRB sizes ×
// policies) through the parallel runner.
//
// Deprecated: use Engine.Sweep, which takes a context.
func Sweep(opts SweepOptions) (*SweepResult, error) {
	return DefaultEngine().Sweep(context.Background(), opts)
}
