package gdp

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesBuild compiles every examples/* package. The examples are the
// library's executable documentation; this keeps them honest against API
// changes without running their (multi-second) simulations in the test
// suite.
func TestExamplesBuild(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	built := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pkg := "./" + filepath.Join("examples", e.Name())
		cmd := exec.Command(goBin, "build", "-o", os.DevNull, pkg)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Errorf("%s does not compile:\n%s", pkg, out)
		}
		built++
	}
	if built == 0 {
		t.Fatal("no example packages found")
	}
}
