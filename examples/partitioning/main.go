// Command partitioning reproduces one cell of the paper's Figure 6: it runs
// the same multi-programmed workloads under the LRU, UCP, ASM-driven, MCP and
// MCP-O last-level-cache management policies and reports system throughput
// (STP) for each, showing how accurate private-mode performance estimates let
// MCP pick better way allocations. Every (workload, policy) pair runs as one
// job on the engine's worker pool, and the policy-independent private-mode
// reference runs are shared through the engine's result cache.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	gdp "repro"
)

func main() {
	engine, err := gdp.NewEngine(gdp.WithProgress(gdp.ConsoleProgress(os.Stderr)))
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.PartitioningStudy(context.Background(), gdp.PartitioningOptions{
		Cores:               4,
		Mix:                 gdp.MixH,
		Workloads:           2,
		InstructionsPerCore: 6000,
		IntervalCycles:      4000,
		Seed:                7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("LLC partitioning study, cell %s\n\n", res.Label)
	fmt.Printf("%-14s", "workload")
	policies := []string{"LRU", "UCP", "ASM", "MCP", "MCP-O"}
	for _, p := range policies {
		fmt.Printf("%10s", p)
	}
	fmt.Println()
	for _, w := range res.PerWorkload {
		fmt.Printf("%-14s", w.Workload)
		for _, p := range policies {
			fmt.Printf("%10.3f", w.STP[p])
		}
		fmt.Println()
	}
	fmt.Printf("%-14s", "average")
	for _, p := range policies {
		fmt.Printf("%10.3f", res.AverageSTP[p])
	}
	fmt.Println()

	fmt.Println("\nSTP relative to LRU:")
	for _, w := range res.RelativeToLRU() {
		fmt.Printf("  %-14s MCP=%.2fx  MCP-O=%.2fx  UCP=%.2fx  ASM=%.2fx\n",
			w.Workload, w.STP["MCP"], w.STP["MCP-O"], w.STP["UCP"], w.STP["ASM"])
	}
}
