// Command serve exercises the service surface of the library end to end, in
// one process and without flags:
//
//  1. it constructs a gdp.Engine and *streams* a short shared-mode run,
//     printing GDP-O's interference-free estimates as intervals complete;
//  2. it wraps the same engine in a gdp.Server, serves it on an ephemeral
//     loopback port, and queries POST /v1/estimate and GET /healthz over
//     real HTTP like an external client would;
//  3. it shuts the server down gracefully.
//
// For a long-lived deployment of the same endpoint, use `gdpsim serve`.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	gdp "repro"
)

func main() {
	ctx := context.Background()
	engine, err := gdp.NewEngine(gdp.WithScale(gdp.DefaultScale()))
	if err != nil {
		log.Fatal(err)
	}

	// 1. Streaming: consume interval estimates while the simulation runs.
	ws, err := gdp.GenerateWorkloads(2, gdp.MixH, 1, 7)
	if err != nil {
		log.Fatal(err)
	}
	acct, err := gdp.NewGDPO(2, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("streaming GDP-O estimates (shared CPI -> estimated private CPI):")
	seq, result := engine.Stream(ctx, gdp.SimOptions{
		Config:              gdp.ScaledConfig(2),
		Workload:            ws[0],
		InstructionsPerCore: 6000,
		IntervalCycles:      3000,
		Seed:                7,
		Accountants:         []gdp.Accountant{acct},
	})
	for rec, err := range seq {
		if err != nil {
			log.Fatal(err)
		}
		if rec.Shared.Instructions == 0 {
			continue
		}
		est := rec.Estimates["GDP-O"]
		fmt.Printf("  core %d: %.3f -> %.3f\n", rec.Core, rec.Shared.CPI(), est.PrivateCPI)
	}
	if _, err := result(); err != nil {
		log.Fatal(err)
	}

	// 2. The same engine as an HTTP service.
	handler, err := gdp.NewServer(engine, gdp.WithMaxConcurrent(4))
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: handler}
	go func() {
		if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("\nserving on %s\n", base)

	resp, err := http.Post(base+"/v1/estimate", "application/json", strings.NewReader(
		`{"cores": 4, "mix": "H", "technique": "GDP-O", "instructions_per_core": 5000, "interval_cycles": 2500}`))
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("estimate: %s: %s", resp.Status, body)
	}
	var est gdp.EstimateResponse
	if err := json.Unmarshal(body, &est); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POST /v1/estimate -> %s, %d cycles simulated\n", resp.Status, est.Cycles)
	for _, c := range est.Cores {
		fmt.Printf("  core %d (%s): shared CPI=%.3f  estimated private CPI=%.3f  slowdown=%.2fx\n",
			c.Core, c.Benchmark, c.SharedCPI, c.EstimatedPrivateCPI, c.EstimatedSlowdown)
	}

	health, err := http.Get(base + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, health.Body)
	health.Body.Close()
	fmt.Printf("GET /healthz -> %s\n", health.Status)

	// 3. Graceful shutdown.
	shutdownCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server shut down gracefully")
}
