// Command scenarios demonstrates the workload scenario subsystem: it lists
// the registry, runs one scenario live through Engine.RunScenario, records
// the scenario's instruction streams to trace files with
// gdp.RecordBenchmarkTrace, replays the recording through the same engine and
// verifies the replayed estimates are byte-identical to the live run —
// the property that makes recorded traces shareable, reproducible artifacts.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	gdp "repro"
)

func main() {
	ctx := context.Background()
	engine, err := gdp.NewEngine()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("scenario registry:")
	for _, sc := range engine.Scenarios() {
		fmt.Printf("  %-16s [%s] %s\n", sc.Name, sc.Class, sc.Description)
	}

	const (
		name         = "pointer-chase"
		cores        = 2
		seed         = int64(7)
		instructions = 3000
		interval     = 2000
	)
	opts := gdp.ScenarioRunOptions{
		Cores:               cores,
		InstructionsPerCore: instructions,
		IntervalCycles:      interval,
		Seed:                seed,
	}

	// 1. Run the scenario live: instruction streams come from the synthetic
	// generator.
	live, err := engine.RunScenario(ctx, name, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlive run of %q (%d cores, %d cycles):\n", name, cores, live.Cycles)
	for _, ce := range live.Cores {
		fmt.Printf("  core %d (%s): shared CPI=%.3f  estimated private CPI=%.3f  slowdown=%.2fx\n",
			ce.Core, ce.Benchmark, ce.SharedCPI, ce.EstimatedPrivateCPI, ce.EstimatedSlowdown)
	}

	// 2. Record the same streams to trace files (format v1, gzip-framed).
	sc, err := gdp.ScenarioByName(name)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := sc.Workload(cores)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "gdp-scenarios")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sources := make([]gdp.TraceSource, cores)
	for core, bench := range wl.Benchmarks {
		path := filepath.Join(dir, fmt.Sprintf("%s.core%d.gdpt", name, core))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		// Record past the per-core budget: benchmarks keep executing until
		// the last core finishes its sample.
		if err := gdp.RecordBenchmarkTrace(f, bench, seed, core, instructions*50); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		in, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := gdp.NewTraceReplayer(in)
		in.Close()
		if err != nil {
			log.Fatal(err)
		}
		st, _ := os.Stat(path)
		fmt.Printf("\nrecorded %s: %d instructions in %d compressed bytes", path, rep.Len(), st.Size())
		sources[core] = rep
	}
	fmt.Println()

	// 3. Replay the recording through the same scenario run.
	replayOpts := opts
	replayOpts.Sources = sources
	replayed, err := engine.RunScenario(ctx, name, replayOpts)
	if err != nil {
		log.Fatal(err)
	}

	liveJSON, _ := json.Marshal(live)
	replayJSON, _ := json.Marshal(replayed)
	if !bytes.Equal(liveJSON, replayJSON) {
		log.Fatalf("replay diverged from the live run:\nlive:   %s\nreplay: %s", liveJSON, replayJSON)
	}
	fmt.Println("replayed estimates are byte-identical to the live run")
}
