// Command accounting compares the accuracy of all five accounting techniques
// (ITCA, PTCA, ASM, GDP, GDP-O) on a 4-core workload of highly LLC-sensitive
// benchmarks — a single cell of the paper's Figure 3. The study runs on a
// gdp.Engine: the per-workload simulations fan out over the engine's worker
// pool (one worker per CPU) and the printed result is identical to a serial
// run.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	gdp "repro"
)

func main() {
	engine, err := gdp.NewEngine(gdp.WithProgress(gdp.ConsoleProgress(os.Stderr)))
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.AccuracyStudy(context.Background(), gdp.AccuracyOptions{
		Cores:               4,
		Mix:                 gdp.MixH,
		Workloads:           2,
		InstructionsPerCore: 8000,
		IntervalCycles:      5000,
		Seed:                42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("accounting accuracy, cell %s\n", res.Label)
	fmt.Printf("%-8s %-22s %-22s\n", "tech", "IPC abs RMS (mean)", "stall abs RMS (mean)")
	for _, t := range res.Techniques {
		fmt.Printf("%-8s %-22.4f %-22.1f\n", t.Technique, t.MeanIPCAbsRMS, t.MeanStallAbsRMS)
	}

	fmt.Println("\nper-benchmark IPC errors (absolute RMS):")
	for _, t := range res.Techniques {
		fmt.Printf("  %-8s", t.Technique)
		for _, b := range t.PerBenchmark {
			fmt.Printf(" %s=%.3f", b.Benchmark, b.IPCAbsRMS)
		}
		fmt.Println()
	}

	fmt.Println("\nGDP-O component relative RMS errors (CPL / overlap / latency):")
	fmt.Printf("  CPL samples=%d  overlap samples=%d  latency samples=%d\n",
		len(res.Components.CPLRelRMS), len(res.Components.OverlapRelRMS), len(res.Components.LatencyRelRMS))
}
