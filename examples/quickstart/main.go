// Command quickstart is the smallest end-to-end use of the library: it builds
// a 2-core workload, attaches the GDP-O accounting technique, runs a
// shared-mode simulation and prints, for every measurement interval, the
// shared-mode CPI next to GDP-O's estimate of the interference-free CPI.
package main

import (
	"fmt"
	"log"

	gdp "repro"
)

func main() {
	cfg := gdp.ScaledConfig(2)

	// Two memory-intensive benchmarks that fight for the shared LLC.
	omnetpp, err := gdp.BenchmarkByName("omnetpp")
	if err != nil {
		log.Fatal(err)
	}
	lbm, err := gdp.BenchmarkByName("lbm")
	if err != nil {
		log.Fatal(err)
	}
	wl := gdp.Workload{ID: "quickstart", Benchmarks: []gdp.Benchmark{omnetpp, lbm}}

	acct, err := gdp.NewGDPO(cfg.Cores, 32)
	if err != nil {
		log.Fatal(err)
	}

	res, err := gdp.Run(gdp.SimOptions{
		Config:              cfg,
		Workload:            wl,
		InstructionsPerCore: 10000,
		IntervalCycles:      5000,
		Seed:                1,
		Accountants:         []gdp.Accountant{acct},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d cycles\n", res.Cycles)
	for core := range res.Intervals {
		fmt.Printf("\ncore %d (%s):\n", core, wl.Benchmarks[core].Name)
		fmt.Printf("  %-10s %-12s %-12s %-8s %s\n", "interval", "shared CPI", "GDP-O CPI", "CPL", "lambda")
		for k, rec := range res.Intervals[core] {
			if rec.Shared.Instructions == 0 {
				continue
			}
			est := rec.Estimates["GDP-O"]
			fmt.Printf("  %-10d %-12.3f %-12.3f %-8d %.1f\n",
				k, rec.Shared.CPI(), est.PrivateCPI, est.CPL, est.PrivateLatency)
		}
	}

	// Ground truth: run each benchmark alone and compare whole-sample CPIs.
	fmt.Println("\nwhole-sample comparison (shared vs actual private):")
	for core, bench := range wl.Benchmarks {
		priv, err := gdp.RunPrivate(cfg, bench, res.SamplePoints[core], 1+int64(core)*7919)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s shared CPI=%.3f  private CPI=%.3f  slowdown=%.2fx\n",
			bench.Name, res.SampleStats[core].CPI(), priv.Total.CPI(),
			res.SampleStats[core].CPI()/priv.Total.CPI())
	}
}
