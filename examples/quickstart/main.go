// Command quickstart is the smallest end-to-end use of the library: it
// constructs a gdp.Engine, builds a 2-core workload, attaches the GDP-O
// accounting technique and *streams* the shared-mode simulation — every
// measurement interval is printed the moment it completes, with the
// shared-mode CPI next to GDP-O's estimate of the interference-free CPI.
package main

import (
	"context"
	"fmt"
	"log"

	gdp "repro"
)

func main() {
	ctx := context.Background()
	engine, err := gdp.NewEngine()
	if err != nil {
		log.Fatal(err)
	}
	cfg := gdp.ScaledConfig(2)

	// Two memory-intensive benchmarks that fight for the shared LLC.
	omnetpp, err := gdp.BenchmarkByName("omnetpp")
	if err != nil {
		log.Fatal(err)
	}
	lbm, err := gdp.BenchmarkByName("lbm")
	if err != nil {
		log.Fatal(err)
	}
	wl := gdp.Workload{ID: "quickstart", Benchmarks: []gdp.Benchmark{omnetpp, lbm}}

	acct, err := gdp.NewGDPO(cfg.Cores, 32)
	if err != nil {
		log.Fatal(err)
	}

	// Stream the run: records arrive while the simulation advances, nothing
	// is accumulated in memory.
	fmt.Printf("%-6s %-10s %-12s %-12s %-8s %s\n", "core", "bench", "shared CPI", "GDP-O CPI", "CPL", "lambda")
	seq, result := engine.Stream(ctx, gdp.SimOptions{
		Config:              cfg,
		Workload:            wl,
		InstructionsPerCore: 10000,
		IntervalCycles:      5000,
		Seed:                1,
		Accountants:         []gdp.Accountant{acct},
	})
	for rec, err := range seq {
		if err != nil {
			log.Fatal(err)
		}
		if rec.Shared.Instructions == 0 {
			continue
		}
		est := rec.Estimates["GDP-O"]
		fmt.Printf("%-6d %-10s %-12.3f %-12.3f %-8d %.1f\n",
			rec.Core, wl.Benchmarks[rec.Core].Name, rec.Shared.CPI(), est.PrivateCPI, est.CPL, est.PrivateLatency)
	}
	res, err := result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated %d cycles\n", res.Cycles)

	// Ground truth: run each benchmark alone and compare whole-sample CPIs.
	fmt.Println("\nwhole-sample comparison (shared vs actual private):")
	for core, bench := range wl.Benchmarks {
		priv, err := engine.RunPrivate(ctx, cfg, bench, res.SamplePoints[core], 1+int64(core)*7919, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s shared CPI=%.3f  private CPI=%.3f  slowdown=%.2fx\n",
			bench.Name, res.SampleStats[core].CPI(), priv.Total.CPI(),
			res.SampleStats[core].CPI()/priv.Total.CPI())
	}
}
