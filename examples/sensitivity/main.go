// Command sensitivity sweeps the Pending Request Buffer size of GDP-O
// (Figure 7e of the paper) and the DRAM interface (Figure 7d), showing that a
// 32-entry PRB captures almost all of the achievable accuracy and that the
// technique is robust to memory-system changes.
//
// Both studies run on one gdp.Engine: the PRB grid fans out over the engine's
// worker pool, and the private-mode reference runs shared between cells are
// simulated once thanks to the engine's result cache.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	gdp "repro"
)

func main() {
	ctx := context.Background()
	engine, err := gdp.NewEngine(gdp.WithProgress(gdp.ConsoleProgress(os.Stderr)))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("GDP-O accuracy vs PRB size (Figure 7e), swept in parallel:")
	res, err := engine.Sweep(ctx, gdp.SweepOptions{
		CoreCounts:          []int{4},
		Mixes:               []gdp.MixKind{gdp.MixH},
		PRBSizes:            []int{8, 16, 32, 64},
		Techniques:          []string{"GDP-O"},
		Workloads:           1,
		InstructionsPerCore: 5000,
		IntervalCycles:      4000,
		Seed:                21,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("  %4d entries: mean IPC abs RMS = %.4f\n", row.PRB, row.MeanIPCAbsRMS)
	}
	if hits, misses := engine.Cache().Stats(); hits > 0 {
		fmt.Printf("  (result cache reused %d of %d reference lookups)\n", hits, hits+misses)
	}

	fmt.Println("\nGDP-O accuracy: DDR2-800 vs DDR4-2666 (Figure 7d):")
	for _, kind := range []gdp.DRAMKind{gdp.DDR2, gdp.DDR4} {
		cfg := gdp.ScaledConfig(4).WithDRAM(kind, 1)
		res, err := engine.AccuracyStudy(ctx, gdp.AccuracyOptions{
			Cores:               4,
			Mix:                 gdp.MixH,
			Workloads:           1,
			InstructionsPerCore: 5000,
			IntervalCycles:      4000,
			Seed:                21,
			Config:              cfg,
			Techniques:          []string{"GDP-O"},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s mean IPC abs RMS = %.4f\n", kind, res.Technique("GDP-O").MeanIPCAbsRMS)
	}
}
