// Command sensitivity sweeps the Pending Request Buffer size of GDP-O
// (Figure 7e of the paper) and the DRAM interface (Figure 7d), showing that a
// 32-entry PRB captures almost all of the achievable accuracy and that the
// technique is robust to memory-system changes.
package main

import (
	"fmt"
	"log"

	gdp "repro"
)

func main() {
	scale := gdp.StudyScale{
		WorkloadsPerCell:    1,
		InstructionsPerCore: 5000,
		IntervalCycles:      4000,
		Seed:                21,
	}

	fmt.Println("GDP-O accuracy vs PRB size (Figure 7e):")
	for _, entries := range []int{8, 16, 32, 64} {
		res, err := gdp.AccuracyStudy(gdp.AccuracyOptions{
			Cores:               4,
			Mix:                 gdp.MixH,
			Workloads:           scale.WorkloadsPerCell,
			InstructionsPerCore: scale.InstructionsPerCore,
			IntervalCycles:      scale.IntervalCycles,
			Seed:                scale.Seed,
			PRBEntries:          entries,
			Techniques:          []string{"GDP-O"},
		})
		if err != nil {
			log.Fatal(err)
		}
		t := res.Technique("GDP-O")
		fmt.Printf("  %4d entries: mean IPC abs RMS = %.4f\n", entries, t.MeanIPCAbsRMS)
	}

	fmt.Println("\nGDP-O accuracy: DDR2-800 vs DDR4-2666 (Figure 7d):")
	for _, kind := range []gdp.DRAMKind{gdp.DDR2, gdp.DDR4} {
		cfg := gdp.ScaledConfig(4).WithDRAM(kind, 1)
		res, err := gdp.AccuracyStudy(gdp.AccuracyOptions{
			Cores:               4,
			Mix:                 gdp.MixH,
			Workloads:           scale.WorkloadsPerCell,
			InstructionsPerCore: scale.InstructionsPerCore,
			IntervalCycles:      scale.IntervalCycles,
			Seed:                scale.Seed,
			Config:              cfg,
			Techniques:          []string{"GDP-O"},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s mean IPC abs RMS = %.4f\n", kind, res.Technique("GDP-O").MeanIPCAbsRMS)
	}
}
