package gdp

import (
	"testing"
	"time"
)

// TestBatchRegistryPrunesOnRead is the regression test for the read-path
// pruning fix: a retired batch must be dropped by the next stream lookup
// alone, without any further POST traffic driving admit's prune.
func TestBatchRegistryPrunesOnRead(t *testing.T) {
	reg := newBatchRegistry()
	t0 := time.Now()

	retired, ok := reg.admit(t0)
	if !ok {
		t.Fatal("admit rejected the first batch")
	}
	live, ok := reg.admit(t0)
	if !ok {
		t.Fatal("admit rejected the second batch")
	}

	// Retire the first batch as append would, with an injectable clock.
	retired.mu.Lock()
	retired.done = true
	retired.doneAt = t0
	retired.mu.Unlock()

	// Within the replay retention both batches are still streamable.
	if _, ok := reg.get(retired.id, t0.Add(cellBatchRetention)); !ok {
		t.Fatal("retired batch dropped before its replay retention elapsed")
	}

	// Past the retention, a read alone must prune the retired batch ...
	if _, ok := reg.get(retired.id, t0.Add(cellBatchRetention+time.Second)); ok {
		t.Fatal("retired batch still streamable past retention with read-only traffic")
	}
	reg.mu.Lock()
	if _, held := reg.batches[retired.id]; held {
		reg.mu.Unlock()
		t.Fatal("retired batch still held in the registry after a read-path prune")
	}
	reg.mu.Unlock()

	// ... while an unfinished batch inside the hard age cap survives.
	if _, ok := reg.get(live.id, t0.Add(cellBatchRetention+time.Second)); !ok {
		t.Fatal("active batch pruned by the read path")
	}

	// The hard age cap applies on reads too, finished or not.
	if _, ok := reg.get(live.id, t0.Add(cellBatchMaxAge+time.Second)); ok {
		t.Fatal("over-age batch still streamable")
	}
}
