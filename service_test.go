package gdp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// netListen opens a loopback listener on an ephemeral port.
func netListen(t *testing.T) (net.Listener, error) {
	t.Helper()
	return net.Listen("tcp", "127.0.0.1:0")
}

func testServer(t *testing.T, opts ...ServerOption) *Server {
	t.Helper()
	engine, err := NewEngine(WithScale(StudyScale{
		WorkloadsPerCell:    1,
		InstructionsPerCore: 3000,
		IntervalCycles:      2000,
		Seed:                1,
		CoreCounts:          []int{2},
	}))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(engine, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func postJSON(t *testing.T, srv *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

// TestEstimateEndpointHappyPath is the acceptance check: a 4-core H-mix
// request returns a JSON estimate.
func TestEstimateEndpointHappyPath(t *testing.T) {
	srv := testServer(t)
	rec := postJSON(t, srv, "/v1/estimate", `{"cores": 4, "mix": "H"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	var resp EstimateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON response: %v", err)
	}
	if resp.APIVersion != APIVersion {
		t.Errorf("api_version = %q", resp.APIVersion)
	}
	if resp.Technique != "GDP-O" {
		t.Errorf("default technique = %q, want GDP-O", resp.Technique)
	}
	if len(resp.Cores) != 4 {
		t.Fatalf("cores = %d, want 4", len(resp.Cores))
	}
	usable := 0
	for _, c := range resp.Cores {
		if c.SharedCPI <= 0 {
			t.Errorf("core %d has no shared CPI", c.Core)
		}
		if c.EstimatedPrivateCPI > 0 && c.Intervals > 0 {
			usable++
		}
	}
	if usable == 0 {
		t.Error("no core produced a usable private-performance estimate")
	}
}

func TestEstimateEndpointExplicitBenchmarks(t *testing.T) {
	srv := testServer(t)
	rec := postJSON(t, srv, "/v1/estimate",
		`{"benchmarks": ["omnetpp", "lbm"], "technique": "GDP", "instructions_per_core": 2500, "interval_cycles": 2000}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	var resp EstimateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Cores) != 2 || resp.Cores[0].Benchmark != "omnetpp" {
		t.Errorf("unexpected cores: %+v", resp.Cores)
	}
}

func TestEstimateEndpointRejectsMalformedJSON(t *testing.T) {
	srv := testServer(t)
	for _, body := range []string{"{not json", `"a string"`, `{"cores": "four"}`} {
		rec := postJSON(t, srv, "/v1/estimate", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), "error") {
			t.Errorf("body %q: no JSON error payload: %s", body, rec.Body.String())
		}
	}
}

func TestEstimateEndpointRejectsBadRequests(t *testing.T) {
	srv := testServer(t)
	cases := []string{
		`{"api_version": "v2"}`,
		`{"mix": "nope"}`,
		`{"benchmarks": ["not-a-benchmark"]}`,
		`{"technique": "MAGIC"}`,
		`{"cores": 9999}`,
	}
	for _, body := range cases {
		rec := postJSON(t, srv, "/v1/estimate", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400 (%s)", body, rec.Code, rec.Body.String())
		}
	}
}

func TestEstimateEndpointMethodNotAllowed(t *testing.T) {
	srv := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/v1/estimate", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("status = %d, want 405", rec.Code)
	}
}

// TestEstimateEndpointClientGone cancels the request context mid-simulation:
// the handler must abort the run and record the client-closed status instead
// of hanging or panicking.
func TestEstimateEndpointClientGone(t *testing.T) {
	srv := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	req := httptest.NewRequest(http.MethodPost, "/v1/estimate",
		strings.NewReader(`{"cores": 2, "instructions_per_core": 50000}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Errorf("status = %d, want %d", rec.Code, statusClientClosedRequest)
	}
	if rec.Body.Len() != 0 {
		t.Errorf("client-gone response carries a body: %s", rec.Body.String())
	}
}

func TestHealthzEndpoint(t *testing.T) {
	srv := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var health map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz = %+v", health)
	}
}

func TestSweepEndpoint(t *testing.T) {
	srv := testServer(t)
	rec := postJSON(t, srv, "/v1/sweep",
		`{"core_counts": [2], "mixes": ["H"], "prb_sizes": [32], "techniques": ["GDP-O"],
		  "workloads": 1, "instructions_per_core": 2000, "interval_cycles": 2000}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	var resp SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cells != 1 || len(resp.Rows) != 1 || resp.Rows[0].Name != "GDP-O" {
		t.Errorf("unexpected sweep response: %+v", resp)
	}
}

// TestSweepEndpointCheckpointKnob: the checkpoint knob turns on warmup
// sharing, and — because forked runs are byte-identical to cold runs — the
// response matches the uncheckpointed one exactly.
func TestSweepEndpointCheckpointKnob(t *testing.T) {
	srv := testServer(t)
	body := `{"core_counts": [2], "mixes": ["H"], "prb_sizes": [16, 32], "techniques": ["GDP-O"],
		  "workloads": 1, "instructions_per_core": 4000, "interval_cycles": 1000%s}`
	cold := postJSON(t, srv, "/v1/sweep", fmt.Sprintf(body, ""))
	if cold.Code != http.StatusOK {
		t.Fatalf("cold status = %d, body = %s", cold.Code, cold.Body.String())
	}
	checkpointed := postJSON(t, srv, "/v1/sweep", fmt.Sprintf(body, `, "checkpoint": {"warmup_intervals": 2}`))
	if checkpointed.Code != http.StatusOK {
		t.Fatalf("checkpointed status = %d, body = %s", checkpointed.Code, checkpointed.Body.String())
	}
	if cold.Body.String() != checkpointed.Body.String() {
		t.Error("checkpointed sweep response diverges from the cold one")
	}
}

func TestSweepEndpointRejectsInvalidNamesAndSizes(t *testing.T) {
	srv := testServer(t)
	cases := []string{
		`{"techniques": ["GPD-O"]}`,
		`{"policies": ["MAGIC"]}`,
		`{"workloads": 100000}`,
		`{"instructions_per_core": 999999999999}`,
		`{"interval_cycles": 3}`,
		`{"prb_sizes": [0]}`,
		`{"checkpoint": {"warmup_intervals": 0}}`,
		`{"checkpoint": {"warmup_intervals": 5000}}`,
	}
	for _, body := range cases {
		rec := postJSON(t, srv, "/v1/sweep", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400 (%s)", body, rec.Code, rec.Body.String())
		}
	}
}

func TestSweepEndpointRejectsOversizedGrid(t *testing.T) {
	srv := testServer(t)
	prbs := make([]string, 600)
	for i := range prbs {
		prbs[i] = "8"
	}
	rec := postJSON(t, srv, "/v1/sweep", `{"core_counts": [2], "mixes": ["H"], "prb_sizes": [`+strings.Join(prbs, ",")+`]}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status = %d, want 400 (%s)", rec.Code, rec.Body.String())
	}
}

// TestConcurrentRequestLimit fills the server's single slot with a slow
// request and checks the next one is shed with 503.
func TestConcurrentRequestLimit(t *testing.T) {
	srv := testServer(t, WithMaxConcurrent(1))
	srv.sem <- struct{}{} // occupy the only slot
	rec := postJSON(t, srv, "/v1/estimate", `{"cores": 2}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (%s)", rec.Code, rec.Body.String())
	}
	<-srv.sem
	rec = postJSON(t, srv, "/v1/estimate", `{"cores": 2, "instructions_per_core": 2000}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("after releasing the slot: status = %d (%s)", rec.Code, rec.Body.String())
	}
}

// TestServerGracefulShutdown starts a real http.Server on a loopback
// listener, issues a request, then checks Shutdown completes and the
// listener stops accepting work — the contract `gdpsim serve` relies on for
// SIGTERM handling.
func TestServerGracefulShutdown(t *testing.T) {
	handler := testServer(t)
	httpSrv := &http.Server{Handler: handler}
	ln, err := netListen(t)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			t.Errorf("Serve returned %v", err)
		}
	}()

	base := "http://" + ln.Addr().String()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	wg.Wait()
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}
