package gdp

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/journal"
)

// tearJournal simulates a SIGKILL mid-sweep: the journal is cut down to its
// header plus `keep` completed cells, with the next record torn in half the
// way an interrupted fsync leaves it.
func tearJournal(t *testing.T, path string, keep int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	if len(lines) < keep+2 {
		t.Fatalf("journal has %d lines, need a header plus more than %d cells", len(lines), keep)
	}
	kept := strings.Join(lines[:keep+1], "")
	torn := lines[keep+1]
	kept += torn[:len(torn)/2]
	if err := os.WriteFile(path, []byte(kept), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSweepJournalResumeByteIdentical is the crash-recovery acceptance check:
// a sweep killed mid-grid (torn final record included) and resumed on a fresh
// engine — fresh cache, so the journal alone carries the completed cells —
// produces byte-identical rows to an uninterrupted run, at jobs=1 and jobs=8.
func TestSweepJournalResumeByteIdentical(t *testing.T) {
	want := localSweepRows(t)
	for _, jobs := range []int{1, 8} {
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "sweep.journal")

			// The "crashed" run: complete the grid, then tear the journal back
			// to two recorded cells plus half of a third.
			engineA, err := NewEngine(WithScale(dispatchTestScale()), WithJobs(jobs))
			if err != nil {
				t.Fatal(err)
			}
			jnlA, err := experiments.OpenSweepJournal(path, false)
			if err != nil {
				t.Fatal(err)
			}
			optsA := dispatchTestSweep()
			optsA.Jobs = jobs
			optsA.Journal = jnlA
			if _, err := engineA.Sweep(t.Context(), optsA); err != nil {
				t.Fatal(err)
			}
			jnlA.Close()
			tearJournal(t, path, 2)

			// The resumed run: a fresh engine (empty cache) must replay the two
			// journaled cells, truncate the torn tail, recompute the rest, and
			// match the uninterrupted rows byte for byte.
			engineB, err := NewEngine(WithScale(dispatchTestScale()), WithJobs(jobs))
			if err != nil {
				t.Fatal(err)
			}
			jnlB, err := experiments.OpenSweepJournal(path, true)
			if err != nil {
				t.Fatal(err)
			}
			defer jnlB.Close()
			if n := jnlB.Resumed(); n != 2 {
				t.Fatalf("Resumed() = %d, want the 2 surviving cells", n)
			}
			optsB := dispatchTestSweep()
			optsB.Jobs = jobs
			optsB.Journal = jnlB
			res, err := engineB.Sweep(t.Context(), optsB)
			if err != nil {
				t.Fatal(err)
			}
			if got := rowsJSON(t, res.Rows); got != want {
				t.Errorf("resumed rows differ from uninterrupted run:\n got %s\nwant %s", got, want)
			}
			if n, lastErr := jnlB.WriteErrors(); n != 0 {
				t.Errorf("journal had %d write errors (last: %v)", n, lastErr)
			}

			// The resumed journal must be complete and clean: all 6 cells, no
			// torn tail, so a further resume needs zero simulation.
			loaded, err := journal.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Count != 6 || loaded.TornTail {
				t.Errorf("journal after resume: %d cells, torn=%v, want 6 clean cells", loaded.Count, loaded.TornTail)
			}
		})
	}
}

// TestSweepWorkersJournalResume covers the fleet path: a sweep sharded across
// a worker resumes from a torn journal with byte-identical rows — crash
// recovery and distribution compose.
func TestSweepWorkersJournalResume(t *testing.T) {
	want := localSweepRows(t)
	path := filepath.Join(t.TempDir(), "sweep.journal")

	w1, _ := newWorker(t)
	engineA, err := NewEngine(WithScale(dispatchTestScale()))
	if err != nil {
		t.Fatal(err)
	}
	jnlA, err := experiments.OpenSweepJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	optsA := dispatchTestSweep()
	optsA.Journal = jnlA
	if _, err := engineA.SweepWorkers(t.Context(), optsA, []string{w1.URL}); err != nil {
		t.Fatal(err)
	}
	jnlA.Close()
	tearJournal(t, path, 2)

	w2, _ := newWorker(t)
	engineB, err := NewEngine(WithScale(dispatchTestScale()))
	if err != nil {
		t.Fatal(err)
	}
	jnlB, err := experiments.OpenSweepJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer jnlB.Close()
	optsB := dispatchTestSweep()
	optsB.Journal = jnlB
	res, err := engineB.SweepWorkers(t.Context(), optsB, []string{w2.URL})
	if err != nil {
		t.Fatal(err)
	}
	if got := rowsJSON(t, res.Rows); got != want {
		t.Errorf("fleet-resumed rows differ from local run:\n got %s\nwant %s", got, want)
	}
}

// TestOpenSweepJournalRefusesExisting pins the clobber guard: starting a
// fresh sweep over an existing journal (a crashed run's completed cells)
// must fail, pointing at -resume.
func TestOpenSweepJournalRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := experiments.OpenSweepJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := experiments.OpenSweepJournal(path, false); err == nil || !strings.Contains(err.Error(), "resume") {
		t.Fatalf("reopening without resume: err = %v, want a refusal naming -resume", err)
	}
}

// TestWorkerCellPanicRetryable is the hardening acceptance check: an injected
// panic inside a worker's cell execution must not kill the worker — the cell
// comes back as a retryable failure, the dispatcher retries it, and the sweep
// finishes with byte-identical rows. The worker's metrics record the panic.
func TestWorkerCellPanicRetryable(t *testing.T) {
	want := localSweepRows(t)

	in, err := faultinject.Parse("cell.exec:panic=1:times=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	before := faultinject.Count(faultinject.PointCellExec)
	faultinject.SetActive(in)
	defer faultinject.SetActive(nil)

	ts, _ := newWorker(t)
	engine, err := NewEngine(WithScale(dispatchTestScale()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.SweepWorkers(t.Context(), dispatchTestSweep(), []string{ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if got := rowsJSON(t, res.Rows); got != want {
		t.Errorf("rows after injected panic differ from clean run:\n got %s\nwant %s", got, want)
	}
	if got := faultinject.Count(faultinject.PointCellExec) - before; got != 1 {
		t.Errorf("cell.exec fired %d times, want 1 (times=1)", got)
	}

	// The worker survived (it just served the rest of the grid) and accounted
	// the panic in its outcome counter and fault-injection telemetry.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	if !strings.Contains(metrics, `gdpsim_dispatch_served_cells_total{outcome="panic"} 1`) {
		t.Errorf("worker metrics missing the panic outcome:\n%s", metrics)
	}
	if !strings.Contains(metrics, `gdpsim_fault_injected_total{point="cell.exec"} 1`) {
		t.Errorf("worker metrics missing the cell.exec injection count:\n%s", metrics)
	}
}
