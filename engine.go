package gdp

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"

	"repro/internal/dispatch"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Engine is the long-lived entry point of the library: constructed once, it
// owns a result cache and the worker-pool configuration, and every method
// takes a context.Context that is honored down to the simulator's cycle loop
// (polled at interval boundaries). A single Engine safely serves concurrent
// callers — the `gdpsim serve` HTTP endpoint runs every request off one
// shared Engine — and repeated studies share private-mode reference
// simulations through the Engine's cache.
//
// The zero configuration is useful: NewEngine() yields an Engine with a fresh
// in-memory cache, a worker pool as wide as the machine and the quick-run
// experiment scale.
type Engine struct {
	jobs     int
	cache    *runner.Cache
	progress runner.ProgressFunc
	scale    StudyScale
	// warmupIntervals is the default checkpointed warmup-sharing prefix
	// (in accounting intervals) applied to studies and sweeps that do not
	// carry their own checkpoint configuration. Zero disables sharing.
	warmupIntervals int
	// cacheBudget bounds the result cache's memory layer in approximate
	// bytes (WithCacheBudget); zero leaves it unbounded. Applied to the
	// resolved cache once all options have run, so it composes with
	// WithCache in either order.
	cacheBudget int64
	// processCache marks the engine behind the deprecated package-level
	// functions: it resolves its cache through the process-wide default at
	// every call, so SetDefaultResultCache keeps affecting legacy callers.
	processCache bool

	// registry holds every metric family the Engine's layers register; the
	// service layer exposes it as /metrics. instr is the per-layer
	// instrumentation bundle threaded into studies and simulations.
	registry *telemetry.Registry
	instr    *experiments.Instrumentation

	// workers is the Engine's default worker fleet (WithWorkers); pool is the
	// long-lived dispatcher over it, sharing breaker state across sweeps.
	// dispatchMetrics instruments every dispatcher the Engine builds,
	// including the per-request pools of SweepWorkers.
	workers         []string
	pool            *dispatch.Pool
	dispatchMetrics *dispatch.Metrics

	// simWorkers is the Engine's default intra-simulation parallel width
	// (WithSimWorkers); SimOptions carrying their own Workers field override
	// it per run.
	simWorkers int
}

// EngineOption configures an Engine at construction time.
type EngineOption func(*Engine) error

// WithJobs sets the default worker-pool width for the Engine's studies
// (0 = runtime.NumCPU(), 1 = serial). Options that carry their own Jobs field
// override it per call.
func WithJobs(n int) EngineOption {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("gdp: WithJobs(%d): width must be >= 0", n)
		}
		e.jobs = n
		return nil
	}
}

// WithSimWorkers sets the default intra-simulation parallel width: runs the
// Engine starts with n > 1 tick their cores on the worker/coordinator driver
// across n OS threads (clamped to the core count), with results byte-identical
// to the serial driver. 0 and 1 select the serial event driver. SimOptions
// that carry their own Workers field override it per run; reference runs
// always stay serial.
func WithSimWorkers(n int) EngineOption {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("gdp: WithSimWorkers(%d): width must be >= 0", n)
		}
		e.simWorkers = n
		return nil
	}
}

// WithCache installs the result cache the Engine's studies share (for example
// a disk-backed cache from NewDiskResultCache). nil is rejected: construct
// the Engine without the option to get a fresh in-memory cache.
func WithCache(c *ResultCache) EngineOption {
	return func(e *Engine) error {
		if c == nil {
			return errors.New("gdp: WithCache(nil)")
		}
		e.cache = c
		return nil
	}
}

// WithProgress installs the default progress sink for the Engine's studies.
func WithProgress(p ProgressFunc) EngineOption {
	return func(e *Engine) error {
		e.progress = p
		return nil
	}
}

// WithScale sets the experiment scale the figure drivers and the service
// layer fall back to when a call does not specify one.
func WithScale(s StudyScale) EngineOption {
	return func(e *Engine) error {
		if s.WorkloadsPerCell <= 0 || s.InstructionsPerCore == 0 || s.IntervalCycles == 0 {
			return fmt.Errorf("gdp: WithScale: incomplete scale %+v", s)
		}
		e.scale = s
		return nil
	}
}

// WithCacheBudget bounds the memory layer of the Engine's result cache to
// approximately maxBytes. Past the budget, the least-recently-used entries
// are evicted; with a disk-backed cache (WithCache over NewDiskResultCache)
// they spill to the sharded disk layer and stay one read away, so rows remain
// byte-identical — only recompute-vs-reread wall-clock changes. Zero leaves
// the memory layer unbounded (the historical behavior). Long-lived servers
// whose sweeps memoize checkpoint blobs should always set a budget: the
// blobs are orders of magnitude larger than the result rows the cache was
// designed for.
func WithCacheBudget(maxBytes int64) EngineOption {
	return func(e *Engine) error {
		if maxBytes < 0 {
			return fmt.Errorf("gdp: WithCacheBudget(%d): budget must be >= 0", maxBytes)
		}
		e.cacheBudget = maxBytes
		return nil
	}
}

// WithCheckpoints turns on checkpointed warmup sharing by default: every
// accuracy study and sweep the Engine runs simulates its first
// warmupIntervals accounting intervals once per unique warmup prefix
// (memoized in the Engine's cache) and forks each cell from the snapshot.
// Results are byte-identical with or without sharing; only wall-clock
// changes. A study whose own warmup setting is non-zero overrides the
// default per call; zero inherits it, and a negative per-call warmup forces
// cold runs despite the Engine default.
func WithCheckpoints(warmupIntervals int) EngineOption {
	return func(e *Engine) error {
		if warmupIntervals < 0 {
			return fmt.Errorf("gdp: WithCheckpoints(%d): intervals must be >= 0", warmupIntervals)
		}
		e.warmupIntervals = warmupIntervals
		return nil
	}
}

// WithWorkers installs a default worker fleet: every Sweep the Engine runs is
// sharded across the named `gdpsim serve` workers (base URLs or host[:port]
// forms), with graceful degradation to local execution when the fleet is
// unreachable. Rows are byte-identical to a local sweep. Malformed worker
// URLs are rejected here, at construction, with a *dispatch.WorkerURLError.
func WithWorkers(workers ...string) EngineOption {
	return func(e *Engine) error {
		parsed, err := dispatch.ParseWorkers(workers)
		if err != nil {
			return err
		}
		e.workers = parsed
		return nil
	}
}

// NewEngine constructs an Engine from functional options.
func NewEngine(opts ...EngineOption) (*Engine, error) {
	e := &Engine{scale: experiments.DefaultScale()}
	for _, opt := range opts {
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	if e.cache == nil {
		e.cache = runner.NewCache()
	}
	if e.cacheBudget > 0 {
		e.cache.SetMaxBytes(e.cacheBudget)
	}
	e.initTelemetry()
	if len(e.workers) > 0 {
		pool, err := dispatch.NewPool(dispatch.Options{
			Workers:   e.workers,
			LocalJobs: e.jobs,
			Metrics:   e.dispatchMetrics,
		})
		if err != nil {
			return nil, err
		}
		e.pool = pool
	}
	return e, nil
}

// initTelemetry builds the Engine's metric registry and instrumentation
// bundle. Cache metrics read through Cache() at scrape time, so they follow
// the process-wide default cache on the legacy Engine.
func (e *Engine) initTelemetry() {
	e.registry = telemetry.NewRegistry()
	e.instr = experiments.NewInstrumentation(e.registry)
	e.dispatchMetrics = dispatch.NewMetrics(e.registry)
	runner.RegisterCacheMetrics(e.registry, func() runner.CacheStats {
		return e.Cache().DetailedStats()
	})
	faultinject.RegisterMetrics(e.registry)
}

// MetricsRegistry returns the Engine's telemetry registry: the backing store
// of the service layer's /metrics endpoint and of `gdpsim bench
// -metrics-out` snapshots.
func (e *Engine) MetricsRegistry() *telemetry.Registry {
	return e.registry
}

// simMetrics returns the Engine's simulation counters (nil when the Engine
// was built without constructors, e.g. a zero value in tests).
func (e *Engine) simMetrics() *sim.Metrics {
	if e.instr == nil {
		return nil
	}
	return e.instr.Sim
}

// Cache returns the Engine's result cache.
func (e *Engine) Cache() *ResultCache {
	if e.processCache {
		return experiments.DefaultCache()
	}
	return e.cache
}

// Scale returns the Engine's default experiment scale with the Engine's
// worker-pool width, cache and progress sink filled in.
func (e *Engine) Scale() StudyScale {
	s := e.scale
	if s.Jobs == 0 {
		s.Jobs = e.jobs
	}
	if s.Cache == nil && !e.processCache {
		s.Cache = e.cache
	}
	if s.Progress == nil {
		s.Progress = e.progress
	}
	if s.Instr == nil {
		s.Instr = e.instr
	}
	return s
}

// fillScale resolves a per-call scale against the Engine defaults: a zero
// scale selects the Engine's, and unset Jobs/Cache/Progress/Instr inherit
// the Engine's.
func (e *Engine) fillScale(s StudyScale) StudyScale {
	if s.WorkloadsPerCell == 0 && s.InstructionsPerCore == 0 && len(s.CoreCounts) == 0 {
		return e.Scale()
	}
	if s.Jobs == 0 {
		s.Jobs = e.jobs
	}
	if s.Cache == nil && !e.processCache {
		s.Cache = e.cache
	}
	if s.Progress == nil {
		s.Progress = e.progress
	}
	if s.Instr == nil {
		s.Instr = e.instr
	}
	return s
}

// Run executes a shared-mode simulation. The context is polled at every
// interval boundary: an already-expired context returns its error without
// completing a single interval.
func (e *Engine) Run(ctx context.Context, opts SimOptions) (*SimResult, error) {
	e.fillSim(&opts)
	return sim.RunContext(ctx, opts)
}

// fillSim applies the Engine's simulation defaults to one run's options: the
// telemetry sink and the intra-simulation parallel width (WithSimWorkers).
func (e *Engine) fillSim(opts *SimOptions) {
	if opts.Metrics == nil {
		opts.Metrics = e.simMetrics()
	}
	if opts.Workers == 0 {
		opts.Workers = e.simWorkers
	}
}

// RunPrivate executes a benchmark alone on the CMP, aligned on the supplied
// instruction sample points. maxCycles bounds the run as a safety net; zero
// selects a generous default derived from the last sample point. (The
// deprecated package-level RunPrivate always defaulted this bound.)
func (e *Engine) RunPrivate(ctx context.Context, cfg *CMPConfig, bench Benchmark,
	samplePoints []uint64, seed int64, maxCycles uint64) (*PrivateReference, error) {
	return sim.RunPrivateContext(ctx, cfg, bench, samplePoints, seed, maxCycles)
}

// ErrStreamStopped reports that a Stream consumer abandoned the sequence
// before the simulation finished.
var ErrStreamStopped = errors.New("gdp: stream stopped before the simulation finished")

// Stream executes a shared-mode simulation and yields every IntervalRecord as
// soon as its interval completes, instead of accumulating them in memory
// (records arrive in core order within an interval and in time order across
// intervals; Result.Intervals stays empty). The simulation advances in the
// consumer's goroutine while the sequence is iterated.
//
// The sequence yields (record, nil) pairs and ends either when the simulation
// completes, when the consumer breaks out, or — after cancellation or a
// simulation error — with one final (zero, err) pair.
//
// The returned result function reports the run's outcome once the sequence
// has ended: the final SimResult (with cumulative statistics and sample
// points, but no interval records) on success, ErrStreamStopped if the
// consumer broke out early, the context's error on cancellation.
func (e *Engine) Stream(ctx context.Context, opts SimOptions) (iter.Seq2[IntervalRecord, error], func() (*SimResult, error)) {
	var (
		res      *SimResult
		runErr   error = ErrStreamStopped // until the sequence actually ends
		consumed bool
	)
	seq := func(yield func(IntervalRecord, error) bool) {
		if consumed {
			yield(IntervalRecord{}, errors.New("gdp: stream iterated twice"))
			return
		}
		consumed = true
		simOpts := opts
		simOpts.DiscardIntervals = true
		e.fillSim(&simOpts)
		stopped := false
		simOpts.OnInterval = func(rec sim.IntervalRecord) error {
			if !yield(rec, nil) {
				stopped = true
				return ErrStreamStopped
			}
			return nil
		}
		res, runErr = sim.RunContext(ctx, simOpts)
		if runErr != nil && !stopped {
			// Deliver terminal errors (cancellation, validation, simulation
			// failures) in-band; a consumer that broke out is not re-entered.
			yield(IntervalRecord{}, runErr)
		}
	}
	result := func() (*SimResult, error) { return res, runErr }
	return seq, result
}

// Checkpoint simulates the first warmupCycles cycles of a shared-mode run
// (a positive multiple of opts.IntervalCycles) and returns the boundary
// snapshot. The checkpoint is serializable and content-addressable: it can
// be stored in the Engine's result cache and seed any number of forks.
func (e *Engine) Checkpoint(ctx context.Context, opts SimOptions, warmupCycles uint64) (*Checkpoint, error) {
	e.fillSim(&opts)
	return sim.RunToCheckpoint(ctx, opts, warmupCycles)
}

// RunFromCheckpoint forks a shared-mode run from a checkpoint and continues
// it to completion under opts. The Result is byte-identical to a cold
// Engine.Run of the same options; a checkpoint that cannot seed these
// options fails with an error wrapping ErrCheckpointMismatch.
func (e *Engine) RunFromCheckpoint(ctx context.Context, opts SimOptions, cp *Checkpoint) (*SimResult, error) {
	e.fillSim(&opts)
	return sim.RunFromCheckpoint(ctx, opts, cp)
}

// AccuracyStudy runs one cell of the accounting-accuracy evaluation
// (Figures 3-5). Unset Jobs/Cache/Progress options inherit the Engine's, as
// does the checkpointed warmup-sharing default (WithCheckpoints).
func (e *Engine) AccuracyStudy(ctx context.Context, opts AccuracyOptions) (*AccuracyResult, error) {
	e.fillStudy(&opts.Jobs, &opts.Cache, &opts.Progress, &opts.Instr)
	if opts.Checkpoint.WarmupIntervals == 0 {
		opts.Checkpoint.WarmupIntervals = e.warmupIntervals
	}
	return experiments.AccuracyStudyContext(ctx, opts)
}

// AccuracyStudyForWorkload runs the accuracy study over one explicit
// workload.
func (e *Engine) AccuracyStudyForWorkload(ctx context.Context, wl Workload, opts AccuracyOptions) (*AccuracyResult, error) {
	e.fillStudy(&opts.Jobs, &opts.Cache, &opts.Progress, &opts.Instr)
	return experiments.AccuracyStudyForWorkloadContext(ctx, wl, opts)
}

// PartitioningStudy runs one cell of the LLC-partitioning evaluation
// (Figure 6). Unset Jobs/Cache/Progress options inherit the Engine's.
func (e *Engine) PartitioningStudy(ctx context.Context, opts PartitioningOptions) (*PartitioningResult, error) {
	e.fillStudy(&opts.Jobs, &opts.Cache, &opts.Progress, &opts.Instr)
	return experiments.PartitioningStudyContext(ctx, opts)
}

// Sweep runs a user-defined experiment grid through the Engine's worker pool,
// or — when the Engine was built WithWorkers — through the distributed
// dispatcher, with byte-identical rows either way. Unset Jobs/Cache/Progress
// options inherit the Engine's, as does the checkpointed warmup-sharing
// default (WithCheckpoints).
func (e *Engine) Sweep(ctx context.Context, opts SweepOptions) (*SweepResult, error) {
	e.fillStudy(&opts.Jobs, &opts.Cache, &opts.Progress, &opts.Instr)
	if opts.WarmupIntervals == 0 {
		opts.WarmupIntervals = e.warmupIntervals
	}
	if e.pool != nil {
		return e.sweepDistributed(ctx, opts, e.pool)
	}
	return experiments.SweepContext(ctx, opts)
}

// SweepWorkers is Sweep sharded across an explicit worker fleet for this call
// only (the `workers` field of POST /v1/sweep and the CLI's `-workers` flag).
// An empty fleet falls back to the Engine's default behavior. The per-call
// pool shares the Engine's dispatch telemetry but not its breaker state.
func (e *Engine) SweepWorkers(ctx context.Context, opts SweepOptions, workers []string) (*SweepResult, error) {
	if len(workers) == 0 {
		return e.Sweep(ctx, opts)
	}
	e.fillStudy(&opts.Jobs, &opts.Cache, &opts.Progress, &opts.Instr)
	if opts.WarmupIntervals == 0 {
		opts.WarmupIntervals = e.warmupIntervals
	}
	pool, err := dispatch.NewPool(dispatch.Options{
		Workers:   workers,
		LocalJobs: e.jobs,
		Metrics:   e.dispatchMetrics,
	})
	if err != nil {
		return nil, err
	}
	return e.sweepDistributed(ctx, opts, pool)
}

// sweepDistributed runs a sweep grid through a dispatcher pool: the grid is
// enumerated into self-contained cells (the exact cells and order
// SweepContext executes), sharded across the fleet, and merged by index, so
// the rows are byte-identical to a local sweep. The Engine's cache fronts the
// fleet — cells it already holds are answered without dispatch, and every
// completion (remote or local) is written back under the cell's spec key.
func (e *Engine) sweepDistributed(ctx context.Context, opts SweepOptions, pool *dispatch.Pool) (*SweepResult, error) {
	if opts.Cache == nil {
		opts.Cache = e.Cache()
	}
	cells := experiments.EnumerateSweepCells(opts)
	cfg := experiments.CellConfig{Cache: opts.Cache, Instr: opts.Instr}

	// With a journal attached, it fronts the cell cache: cells a crashed run
	// completed are answered before the fleet sees them, and every completion
	// the dispatcher writes back is journaled as it lands. The keys (and the
	// cells' purity) are shared with the local path, so a sweep interrupted
	// under -workers can resume locally and vice versa.
	var cache dispatch.CellCache = cellCacheAdapter{opts.Cache}
	var keys []string
	if opts.Journal != nil {
		keys = make([]string, len(cells))
		labels := make(map[string]string, len(cells))
		for i, c := range cells {
			key, err := runner.SpecKey(c.Spec())
			if err != nil {
				return nil, fmt.Errorf("gdp: sweep cell %q: %w", c.Label(), err)
			}
			keys[i] = key
			labels[key] = c.Label()
		}
		cache = journalCellCache{inner: cache, journal: opts.Journal, labels: labels}
	}
	groups, err := pool.Run(ctx, cells, dispatch.RunConfig{
		Local: func(ctx context.Context, c experiments.Cell) ([]SweepRow, error) {
			return c.Run(ctx, cfg)
		},
		Cache:    cache,
		Progress: opts.Progress,
	})
	if err != nil {
		return nil, err
	}
	if opts.Journal != nil {
		// Completion pass, as in the local sweep: cells the cache answered
		// during prefill never reached Put, so record them now (Record
		// deduplicates) and a finished sweep leaves a complete journal.
		for i, c := range cells {
			_ = opts.Journal.Record(keys[i], c.Label(), groups[i])
		}
	}
	out := &SweepResult{Cells: len(cells)}
	for _, rows := range groups {
		out.Rows = append(out.Rows, rows...)
	}
	return out, nil
}

// journalCellCache fronts the dispatcher's cell cache with the sweep journal:
// Get answers from the crashed run's completed cells first, and Put journals
// every completion the moment the dispatcher absorbs it.
type journalCellCache struct {
	inner   dispatch.CellCache
	journal experiments.CellJournal
	labels  map[string]string
}

func (c journalCellCache) Get(key string) ([]SweepRow, bool) {
	if rows, ok := c.journal.Lookup(key); ok {
		return rows, true
	}
	return c.inner.Get(key)
}

func (c journalCellCache) Put(key string, rows []SweepRow) {
	c.inner.Put(key, rows)
	_ = c.journal.Record(key, c.labels[key], rows)
}

// cellCacheAdapter exposes a runner.Cache as the dispatcher's cell cache. The
// entries are the same []SweepRow values SweepContext memoizes, under the
// same spec keys, so local sweeps, front-end dispatchers and remote workers
// all share one cache population.
type cellCacheAdapter struct{ c *runner.Cache }

func (a cellCacheAdapter) Get(key string) ([]SweepRow, bool) {
	return runner.Lookup[[]SweepRow](a.c, key)
}

func (a cellCacheAdapter) Put(key string, rows []SweepRow) {
	a.c.Put(key, rows)
}

// FleetHealth snapshots the Engine's default worker fleet for /healthz (nil
// when the Engine has no fleet).
func (e *Engine) FleetHealth() []dispatch.WorkerHealth {
	if e.pool == nil {
		return nil
	}
	return e.pool.FleetHealth()
}

// Figure3 regenerates Figures 3a/3b. A zero scale selects the Engine's.
func (e *Engine) Figure3(ctx context.Context, scale StudyScale) (*Figure3Result, error) {
	return experiments.Figure3Context(ctx, e.fillScale(scale))
}

// Figure7 regenerates every panel of the sensitivity study. A zero
// opts.Scale selects the Engine's.
func (e *Engine) Figure7(ctx context.Context, opts SensitivityOptions) ([]*SensitivityResult, error) {
	opts.Scale = e.fillScale(opts.Scale)
	return experiments.Figure7Context(ctx, opts)
}

// fillStudy applies the Engine defaults to a study's Jobs/Cache/Progress/
// Instr option fields when the caller left them unset.
func (e *Engine) fillStudy(jobs *int, cache **ResultCache, progress *ProgressFunc, instr **experiments.Instrumentation) {
	if *jobs == 0 {
		*jobs = e.jobs
	}
	if *cache == nil && !e.processCache {
		*cache = e.cache
	}
	if *progress == nil {
		*progress = e.progress
	}
	if *instr == nil {
		*instr = e.instr
	}
}

// defaultEngine backs the deprecated package-level functions. It shares the
// process-wide default cache so SetDefaultResultCache keeps working for
// legacy callers.
var (
	defaultEngineOnce sync.Once
	defaultEngine     *Engine
)

// DefaultEngine returns the process-wide Engine the deprecated package-level
// functions run on. Its studies use the process-wide default result cache
// (DefaultResultCache), so SetDefaultResultCache affects it.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() {
		defaultEngine = &Engine{scale: experiments.DefaultScale(), processCache: true}
		defaultEngine.initTelemetry()
	})
	return defaultEngine
}
