package gdp

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/dispatch"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

// errCellPanic marks a cell whose execution panicked. The panic is contained
// to that one cell: the worker process survives, and the dispatcher is told
// the cell is retryable (a panic on this worker says nothing about the cell —
// fault injection, a corrupted cache shard, or a worker-local bug can all
// produce one, and the cell may well succeed elsewhere).
var errCellPanic = errors.New("cell execution panicked")

// Worker wire protocol (the server side of internal/dispatch):
//
//	POST /v1/cells       dispatch.CellsRequest -> dispatch.CellsResponse
//	GET  /v1/cells/{id}  NDJSON stream of dispatch.CellResult lines
//
// A batch executes asynchronously on the worker's cell pool; the result
// stream replays every line already produced and then follows live, so a
// dispatcher that reconnects after a network blip loses nothing. Each cell
// runs through the engine's two-layer cache under its spec key — a repeated
// cell (from any dispatcher, or from this worker's own local sweeps) is
// answered without re-simulation.

const (
	// maxActiveCellBatches bounds concurrently executing batches; excess
	// POSTs shed with 503 like the JSON endpoints.
	maxActiveCellBatches = 8
	// cellBatchRetention keeps a finished batch's lines available for replay.
	cellBatchRetention = 5 * time.Minute
	// cellBatchMaxAge hard-caps a batch's lifetime, execution included.
	cellBatchMaxAge = 30 * time.Minute
)

// cellBatch is one accepted batch: its result lines (already JSON-encoded,
// newline-free) and the completion state. Lines are retained until the batch
// expires so result streams can replay from the start.
type cellBatch struct {
	id      string
	created time.Time

	mu      sync.Mutex
	lines   []json.RawMessage
	done    bool
	doneAt  time.Time
	changed chan struct{} // replaced on every append; closed to wake streams
}

// append encodes one result line and wakes every follower.
func (b *cellBatch) append(res dispatch.CellResult) {
	raw, err := json.Marshal(res)
	if err != nil {
		raw, _ = json.Marshal(dispatch.CellResult{Index: res.Index, Error: err.Error()})
	}
	b.mu.Lock()
	b.lines = append(b.lines, raw)
	if res.Done {
		b.done = true
		b.doneAt = time.Now()
	}
	close(b.changed)
	b.changed = make(chan struct{})
	b.mu.Unlock()
}

// batchRegistry tracks the server's batches.
type batchRegistry struct {
	mu      sync.Mutex
	batches map[string]*cellBatch
}

func newBatchRegistry() *batchRegistry {
	return &batchRegistry{batches: map[string]*cellBatch{}}
}

// prune drops finished batches past the replay retention and any batch past
// the hard age cap. Called on every POST; the registry stays O(active).
func (r *batchRegistry) prune(now time.Time) {
	for id, b := range r.batches {
		b.mu.Lock()
		expired := (b.done && now.Sub(b.doneAt) > cellBatchRetention) ||
			now.Sub(b.created) > cellBatchMaxAge
		b.mu.Unlock()
		if expired {
			delete(r.batches, id)
		}
	}
}

// admit registers a new batch if the active count allows it.
func (r *batchRegistry) admit(now time.Time) (*cellBatch, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.prune(now)
	active := 0
	for _, b := range r.batches {
		b.mu.Lock()
		if !b.done {
			active++
		}
		b.mu.Unlock()
	}
	if active >= maxActiveCellBatches {
		return nil, false
	}
	buf := make([]byte, 8)
	if _, err := rand.Read(buf); err != nil {
		return nil, false
	}
	b := &cellBatch{
		id:      hex.EncodeToString(buf),
		created: now,
		changed: make(chan struct{}),
	}
	r.batches[b.id] = b
	return b, true
}

// get looks a batch up for streaming, pruning expired batches first: an idle
// worker that only ever serves reads after a dispatch burst still drops
// retired batches (and their retained result lines) the next time any stream
// attaches, instead of holding them until the next POST.
func (r *batchRegistry) get(id string, now time.Time) (*cellBatch, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.prune(now)
	b, ok := r.batches[id]
	return b, ok
}

// dispatchServerMetrics instruments the worker side of the protocol.
type dispatchServerMetrics struct {
	servedCells   *telemetry.CounterVec
	servedBatches *telemetry.Counter
	activeBatches *telemetry.Gauge
}

func newDispatchServerMetrics(r *telemetry.Registry) *dispatchServerMetrics {
	return &dispatchServerMetrics{
		servedCells: r.CounterVec("gdpsim_dispatch_served_cells_total",
			"Cells executed for remote dispatchers, by outcome.", "outcome"),
		servedBatches: r.Counter("gdpsim_dispatch_served_batches_total",
			"Cell batches completed for remote dispatchers."),
		activeBatches: r.Gauge("gdpsim_dispatch_active_batches",
			"Cell batches currently executing."),
	}
}

// validateCell applies the service work-size limits on top of the cell's own
// structural validation: a worker bounds how much simulation one dispatched
// cell may demand exactly like a direct request.
func validateCell(c experiments.Cell) error {
	if err := c.Validate(); err != nil {
		return badRequestErr(err)
	}
	if c.Cores > maxServiceCores {
		return badRequestf("cell core count %d out of range (1..%d)", c.Cores, maxServiceCores)
	}
	if err := checkWorkSize(c.InstructionsPerCore, c.IntervalCycles, c.Workloads); err != nil {
		return err
	}
	if c.PRB > maxServicePRBEntries {
		return badRequestf("cell prb size %d out of range (1..%d)", c.PRB, maxServicePRBEntries)
	}
	if c.WarmupIntervals < 0 || c.WarmupIntervals > maxServiceWarmupIntervals {
		return badRequestf("cell warmup_intervals = %d out of range (0..%d)", c.WarmupIntervals, maxServiceWarmupIntervals)
	}
	for _, prb := range c.CoPRBSizes {
		if prb <= 0 || prb > maxServicePRBEntries {
			return badRequestf("cell co_prb_sizes entry %d out of range (1..%d)", prb, maxServicePRBEntries)
		}
	}
	return nil
}

// handleCellsPost accepts one batch of cells and starts executing it.
func (s *Server) handleCellsPost(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req dispatch.CellsRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	if req.APIVersion != dispatch.ProtocolVersion {
		writeError(w, http.StatusBadRequest,
			"unsupported api_version \""+req.APIVersion+"\" (this worker speaks \""+dispatch.ProtocolVersion+"\")")
		return
	}
	if len(req.Cells) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Cells) > maxSweepCells {
		writeError(w, http.StatusBadRequest, "batch exceeds the cell limit")
		return
	}
	for _, env := range req.Cells {
		if env.Index < 0 {
			writeError(w, http.StatusBadRequest, "negative cell index")
			return
		}
		if err := validateCell(env.Cell); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	b, ok := s.batches.admit(time.Now())
	if !ok {
		s.metrics.shed.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "batch limit reached")
		return
	}
	s.dispatchSrv.activeBatches.Inc()
	go s.runCellBatch(b, req.Cells)
	writeJSON(w, http.StatusOK, dispatch.CellsResponse{
		APIVersion: dispatch.ProtocolVersion,
		BatchID:    b.id,
		Cells:      len(req.Cells),
	})
}

// runCellBatch executes a batch on the server's cell pool, appending each
// result line the moment its cell finishes (completion order — the dispatcher
// merges by index). Cells flow through the engine cache under their spec
// keys, so repeats are answered without simulation and local sweeps on this
// worker reuse dispatched results.
func (s *Server) runCellBatch(b *cellBatch, cells []dispatch.CellEnvelope) {
	ctx, cancel := context.WithTimeout(context.Background(), cellBatchMaxAge)
	defer cancel()
	cache := s.engine.Cache()
	cfg := experiments.CellConfig{Cache: cache, Instr: s.engine.instr}
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		completed int
		failed    int
	)
	for _, env := range cells {
		wg.Add(1)
		go func(env dispatch.CellEnvelope) {
			defer wg.Done()
			s.cellSem <- struct{}{}
			defer func() { <-s.cellSem }()
			res := dispatch.CellResult{Index: env.Index}
			key, err := runner.SpecKey(env.Cell.Spec())
			if err == nil {
				res.SpecKey = key
				var rows []SweepRow
				// The recover lives inside the memoized function: the cache
				// layer re-panics on a panicking compute, so this is the only
				// place a cell's panic can be converted into an error before
				// it unwinds the worker goroutine and kills the process.
				rows, _, err = runner.MemoKeyedContext(ctx, cache, key, func() (rows []SweepRow, err error) {
					defer func() {
						if r := recover(); r != nil {
							err = fmt.Errorf("%w: %v", errCellPanic, r)
						}
					}()
					if ferr := faultinject.Fire(faultinject.PointCellExec); ferr != nil {
						return nil, ferr
					}
					return env.Cell.Run(ctx, cfg)
				})
				res.Rows = rows
			}
			mu.Lock()
			switch {
			case err == nil:
				completed++
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				// The worker is giving up (shutdown, batch age cap), not the
				// cell itself: tell the dispatcher to reschedule elsewhere
				// instead of failing the whole sweep.
				res.Rows, res.Error, res.Retryable = nil, err.Error(), true
				failed++
			case errors.Is(err, errCellPanic):
				res.Rows, res.Error, res.Retryable = nil, err.Error(), true
				failed++
			default:
				res.Rows, res.Error = nil, err.Error()
				failed++
			}
			mu.Unlock()
			outcome := "completed"
			switch {
			case errors.Is(err, errCellPanic):
				outcome = "panic"
			case res.Error != "":
				outcome = "failed"
			}
			s.dispatchSrv.servedCells.With(outcome).Inc()
			b.append(res)
		}(env)
	}
	wg.Wait()
	mu.Lock()
	done := dispatch.CellResult{Done: true, Completed: completed, Failed: failed}
	mu.Unlock()
	b.append(done)
	s.dispatchSrv.activeBatches.Dec()
	s.dispatchSrv.servedBatches.Inc()
}

// handleCellStream streams a batch's results as NDJSON: every line produced
// so far (replay), then live lines until the terminal done line.
func (s *Server) handleCellStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/cells/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "unknown batch")
		return
	}
	b, ok := s.batches.get(id, time.Now())
	if !ok {
		writeError(w, http.StatusNotFound, "unknown batch")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		b.mu.Lock()
		lines := b.lines[sent:]
		done := b.done
		ch := b.changed
		b.mu.Unlock()
		for _, line := range lines {
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
		}
		sent += len(lines)
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}
