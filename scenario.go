package gdp

import (
	"context"
	"io"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Trace types. The versioned binary trace format (TraceFormatVersion) makes
// instruction streams shareable artifacts: record once with a TraceWriter,
// replay anywhere with a TraceReplayer. Every component that consumes
// instructions accepts a TraceSource, so synthetic generation and replay are
// interchangeable backends.
type (
	// TraceSource is an instruction stream (synthetic generator or replayer).
	TraceSource = trace.Source
	// TraceInstruction is one element of an instruction stream.
	TraceInstruction = trace.Instruction
	// TraceWriter serializes an instruction stream to the binary trace format.
	TraceWriter = trace.Writer
	// TraceReader decodes a binary trace record by record.
	TraceReader = trace.Reader
	// TraceReplayer replays a recorded trace as an infinite TraceSource.
	TraceReplayer = trace.Replayer
)

// TraceFormatVersion is the on-disk trace format version this build reads
// and writes.
const TraceFormatVersion = trace.FormatVersion

// ErrBadTrace wraps every structural problem found in a trace file.
var ErrBadTrace = trace.ErrBadTrace

// NewTraceWriter starts a binary trace stream named name on w.
func NewTraceWriter(w io.Writer, name string) (*TraceWriter, error) { return trace.NewWriter(w, name) }

// NewTraceReader validates the trace header on r and decodes records.
func NewTraceReader(r io.Reader) (*TraceReader, error) { return trace.NewReader(r) }

// NewTraceReplayer loads a complete binary trace and replays it as a
// TraceSource (wrapping around at the end of the recording).
func NewTraceReplayer(r io.Reader) (*TraceReplayer, error) { return trace.NewReplayer(r) }

// RecordTrace writes n instructions from src to w as a complete trace stream
// named name.
func RecordTrace(w io.Writer, name string, src TraceSource, n int) error {
	return trace.Record(w, name, src, n)
}

// CoreSeed derives the per-core trace seed Engine.Run uses for core i of a
// run with the given base seed. Recording a benchmark with this seed yields
// exactly the stream the live run would generate on that core.
func CoreSeed(seed int64, core int) int64 { return sim.CoreSeed(seed, core) }

// RecordBenchmarkTrace records n instructions of bench's deterministic
// stream — exactly as Engine.Run would generate them on core `core` of a run
// with base seed `seed` — to w. Replaying the recording through a run with
// Sources set reproduces the live run byte for byte, as long as n covers
// every instruction the run fetches.
func RecordBenchmarkTrace(w io.Writer, bench Benchmark, seed int64, core int, n int) error {
	gen, err := bench.NewGenerator(sim.CoreSeed(seed, core))
	if err != nil {
		return err
	}
	return trace.Record(w, bench.Name, gen, n)
}

// Scenario types. Scenarios are named workload patterns beyond the paper's
// H/M/L mixes, assembled deterministically from purpose-built trace profiles.
type (
	// Scenario is one named workload pattern from the registry.
	Scenario = workload.Scenario
	// UnknownScenarioError reports a scenario name missing from the registry;
	// the HTTP layer surfaces it as 400.
	UnknownScenarioError = workload.UnknownScenarioError
)

// ScenarioNames returns the registered scenario names, sorted.
func ScenarioNames() []string { return workload.ScenarioNames() }

// ScenarioByName returns the named scenario, or an *UnknownScenarioError.
func ScenarioByName(name string) (Scenario, error) { return workload.ScenarioByName(name) }

// Scenarios returns the scenario registry, sorted by name.
func (e *Engine) Scenarios() []Scenario { return workload.Scenarios() }

// ScenarioRunOptions configure Engine.RunScenario. The zero value is useful:
// 4 cores, GDP-O, a 32-entry PRB and the Engine scale's simulation sizes.
type ScenarioRunOptions struct {
	// Cores is the CMP size (default 4).
	Cores int
	// Technique is the accounting technique (default GDP-O).
	Technique string
	// PRBEntries sizes the GDP/GDP-O Pending Request Buffer (default 32).
	PRBEntries int
	// InstructionsPerCore, IntervalCycles and Seed mirror SimOptions; zero
	// values select the Engine scale's defaults.
	InstructionsPerCore uint64
	IntervalCycles      uint64
	Seed                int64
	// MaxCycles bounds the simulation (0 = derived default).
	MaxCycles uint64
	// Sources, when non-empty, replays externally recorded traces (one per
	// core) instead of generating the scenario's instruction streams live.
	Sources []TraceSource
}

// RunScenario runs a named scenario workload and reduces the run to per-core
// instruction-weighted private-performance estimates. An unknown name yields
// an *UnknownScenarioError (reachable through errors.As). With opts.Sources
// set, the scenario is replayed from recorded traces instead of generated
// live; a recording produced by RecordBenchmarkTrace with the same seed
// yields estimates byte-identical to the live run.
func (e *Engine) RunScenario(ctx context.Context, name string, opts ScenarioRunOptions) (*EstimateResponse, error) {
	sc, err := workload.ScenarioByName(name)
	if err != nil {
		return nil, badRequestErr(err)
	}
	cores := opts.Cores
	if cores == 0 {
		cores = 4
	}
	wl, err := sc.Workload(cores)
	if err != nil {
		return nil, badRequestf("%v", err)
	}
	return e.runEstimate(ctx, estimateParams{
		workload:            wl,
		technique:           opts.Technique,
		prbEntries:          opts.PRBEntries,
		instructionsPerCore: opts.InstructionsPerCore,
		intervalCycles:      opts.IntervalCycles,
		seed:                opts.Seed,
		maxCycles:           opts.MaxCycles,
		sources:             opts.Sources,
	})
}

// Replay runs an estimation over externally supplied instruction sources,
// one per core. wl labels the run (its benchmark names appear in the
// response); the instruction streams come entirely from the sources
// parameter. opts.Cores is ignored (the core count is len(sources)) and
// opts.Sources must be empty — that field belongs to RunScenario, where no
// separate parameter exists.
func (e *Engine) Replay(ctx context.Context, wl Workload, sources []TraceSource, opts ScenarioRunOptions) (*EstimateResponse, error) {
	if len(opts.Sources) > 0 {
		return nil, badRequestf("pass replay sources as the Replay parameter, not ScenarioRunOptions.Sources")
	}
	if len(sources) == 0 {
		return nil, badRequestf("replay needs at least one trace source")
	}
	if wl.Cores() != len(sources) {
		return nil, badRequestf("workload names %d benchmarks for %d trace sources", wl.Cores(), len(sources))
	}
	return e.runEstimate(ctx, estimateParams{
		workload:            wl,
		technique:           opts.Technique,
		prbEntries:          opts.PRBEntries,
		instructionsPerCore: opts.InstructionsPerCore,
		intervalCycles:      opts.IntervalCycles,
		seed:                opts.Seed,
		maxCycles:           opts.MaxCycles,
		sources:             sources,
	})
}
