package gdp

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzEstimateRequestJSON fuzzes the v1 estimate request decode-and-validate
// path: any bytes that unmarshal into an EstimateRequest must either resolve
// to a workload or be rejected with a classified *RequestError — never panic
// and never leak an unclassified error for a client-side problem. No
// simulation runs; this is exactly the pre-simulation half of the HTTP
// handler.
func FuzzEstimateRequestJSON(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"cores": 4, "mix": "H"}`))
	f.Add([]byte(`{"benchmarks": ["omnetpp", "lbm"], "technique": "GDP"}`))
	f.Add([]byte(`{"scenario": "streaming", "cores": 2}`))
	f.Add([]byte(`{"scenario": "streaming", "mix": "H"}`))
	f.Add([]byte(`{"api_version": "v0"}`))
	f.Add([]byte(`{"cores": -1}`))
	f.Add([]byte(`{"cores": 100000, "instructions_per_core": 99999999999}`))
	f.Add([]byte(`{"mix": "bogus", "prb_entries": -7, "interval_cycles": 1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req EstimateRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		p, err := req.validate()
		if err != nil {
			requireRequestError(t, err)
			return
		}
		if p.workload.Cores() == 0 {
			t.Fatalf("validate accepted %q but produced an empty workload", data)
		}
	})
}

// FuzzSweepRequestJSON fuzzes the v1 sweep request validation (grid sizing,
// name checks, work-size limits) without fanning out any cells.
func FuzzSweepRequestJSON(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"core_counts": [2, 4], "mixes": ["H", "L"], "prb_sizes": [16, 32]}`))
	f.Add([]byte(`{"scenarios": ["streaming", "bursty"], "techniques": ["GDP-O"]}`))
	f.Add([]byte(`{"policies": ["UCP"], "workloads": 100}`))
	f.Add([]byte(`{"core_counts": [0]}`))
	f.Add([]byte(`{"mixes": ["nope"]}`))
	f.Add([]byte(`{"core_counts": [1,2,3,4,5,6,7,8], "prb_sizes": [1,2,4,8,16,32,64,128]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req SweepRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		opts, err := req.validate()
		if err != nil {
			requireRequestError(t, err)
			return
		}
		// Accepted requests stay within the advertised grid bound.
		coreN, mixN, prbN := len(opts.CoreCounts), len(opts.Mixes), len(opts.PRBSizes)
		if coreN == 0 {
			coreN = 1
		}
		if mixN == 0 {
			mixN = 3
		}
		if prbN == 0 {
			prbN = 1
		}
		cells := coreN * mixN * prbN
		if len(opts.Policies) > 0 {
			cells += coreN * mixN
		}
		cells += coreN * len(opts.Scenarios) * prbN
		if cells > maxSweepCells {
			t.Fatalf("validate accepted a grid of %d cells (limit %d): %q", cells, maxSweepCells, data)
		}
	})
}

// requireRequestError asserts a rejection maps to HTTP 400.
func requireRequestError(t *testing.T, err error) {
	t.Helper()
	var reqErr *RequestError
	if !errors.As(err, &reqErr) {
		t.Fatalf("client-side rejection %v is not a *RequestError (would map to HTTP 500)", err)
	}
}
