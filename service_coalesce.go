package gdp

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/runner"
	"repro/internal/telemetry"
)

// coalescer merges concurrent identical POST /v1/estimate requests into one
// simulation. Requests are grouped by the spec key of their decoded body; the
// first arrival becomes the group's leader and runs the engine once, every
// request that arrives before the leader finishes joins the group and shares
// the response. It is a size-or-deadline micro-batcher: with a positive
// window the leader holds its simulation back for up to that long, letting a
// burst of identical requests accumulate (maxBatch waiters flush early); with
// a zero window the leader starts immediately and the coalescer degenerates
// to pure in-flight deduplication — late arrivals still share the running
// simulation, and no request ever waits longer than the simulation itself.
//
// Estimate responses are not memoized in the result cache (an estimate is
// cheap enough to re-run when traffic is not concurrent), so under sustained
// multi-tenant load the coalescer is what turns N identical bursts into one
// simulation instead of N.
type coalescer struct {
	mu     sync.Mutex
	groups map[string]*coalesceGroup
	// window is how long a leader waits for joiners before simulating
	// (0 = start immediately).
	window time.Duration
	// maxBatch flushes a window early once this many requests have grouped
	// (0 = no size flush).
	maxBatch int
	metrics  *coalesceMetrics
}

// coalesceGroup is one in-flight set of identical requests sharing a
// simulation. waiters/total/fired/abandoned are guarded by the coalescer's
// mutex; resp and err are written once before done closes.
type coalesceGroup struct {
	key  string
	fire chan struct{} // closed to flush the batching window early
	done chan struct{} // closed when resp/err are ready
	resp *EstimateResponse
	err  error
	// cancel aborts the group's simulation; called when every waiter has
	// disconnected, and after completion to release the context.
	cancel  context.CancelFunc
	waiters int // requests currently blocked on done
	total   int // requests that ever joined (the batch size)
	// fired marks that the window has been flushed (or expired): guards the
	// one close(fire).
	fired bool
	// abandoned marks a group whose every waiter left before completion: its
	// simulation is being cancelled, so new arrivals must start fresh
	// instead of inheriting the foreign cancellation error.
	abandoned bool
}

// coalesceMetrics are the /metrics counters of the request coalescer.
type coalesceMetrics struct {
	// batches counts executed groups by what released them: "immediate"
	// (zero window), "deadline" (window expired), "size" (maxBatch reached)
	// or "abandoned" (every waiter disconnected first).
	batches *telemetry.CounterVec
	// joined counts requests that shared another request's simulation.
	joined *telemetry.Counter
}

func newCoalesceMetrics(r *telemetry.Registry) *coalesceMetrics {
	return &coalesceMetrics{
		batches: r.CounterVec("gdpsim_coalesce_batches_total",
			"Coalesced estimate groups executed, by what released the batch.", "reason"),
		joined: r.Counter("gdpsim_coalesce_joined_total",
			"Estimate requests that shared another identical request's simulation."),
	}
}

// newCoalescer builds a coalescer; window and maxBatch of zero give pure
// in-flight deduplication.
func newCoalescer(window time.Duration, maxBatch int, m *coalesceMetrics) *coalescer {
	return &coalescer{
		groups:   map[string]*coalesceGroup{},
		window:   window,
		maxBatch: maxBatch,
		metrics:  m,
	}
}

// WithCoalesce tunes the estimate coalescer's batching: a leader request
// holds its simulation for up to window so identical concurrent requests can
// join its batch, and maxBatch waiters release the batch early (0 = no size
// flush). The default is a zero window — identical requests coalesce only
// while one is already simulating, adding no latency. A window of a few
// milliseconds trades that much added latency for coalescing short bursts
// whose requests do not overlap exactly; keep it well under a simulation's
// wall-clock or it is pure loss.
func WithCoalesce(window time.Duration, maxBatch int) ServerOption {
	return func(s *Server) error {
		if window < 0 {
			return fmt.Errorf("gdp: WithCoalesce: window %v must be >= 0", window)
		}
		if maxBatch < 0 {
			return fmt.Errorf("gdp: WithCoalesce: maxBatch %d must be >= 0", maxBatch)
		}
		s.coalesceWindow = window
		s.coalesceMax = maxBatch
		return nil
	}
}

// coalescedEstimate is the /v1/estimate entry point: identical concurrent
// requests run one simulation. A request whose body cannot even be spec-keyed
// falls through to the engine, which produces the proper validation error.
func (s *Server) coalescedEstimate(ctx context.Context, req *EstimateRequest) (*EstimateResponse, error) {
	key, err := runner.SpecKey(req)
	if err != nil {
		// Cannot group: fall through to the engine (which produces the
		// proper validation error) under a concurrency slot of its own.
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			return nil, errServerBusy
		}
		return s.engine.Estimate(ctx, req)
	}
	co := s.coalesce
	co.mu.Lock()
	g := co.groups[key]
	if g != nil && g.abandoned {
		g = nil // dying group: its simulation is being cancelled
	}
	if g == nil {
		// The leader charges the concurrency limiter one slot, held for the
		// group's whole simulation; joiners ride along for free. Shedding
		// therefore bounds concurrent *simulations*, not concurrent requests —
		// a burst of identical requests costs one slot total.
		select {
		case s.sem <- struct{}{}:
		default:
			co.mu.Unlock()
			return nil, errServerBusy
		}
		runCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		g = &coalesceGroup{
			key:     key,
			fire:    make(chan struct{}),
			done:    make(chan struct{}),
			cancel:  cancel,
			waiters: 1,
			total:   1,
		}
		co.groups[key] = g
		co.mu.Unlock()
		go func() {
			defer func() { <-s.sem }()
			co.run(runCtx, g, req, s.engine)
		}()
	} else {
		g.waiters++
		g.total++
		flush := co.maxBatch > 0 && g.total >= co.maxBatch && !g.fired
		if flush {
			g.fired = true
		}
		co.mu.Unlock()
		co.metrics.joined.Inc()
		if flush {
			close(g.fire)
		}
	}
	defer co.release(g)
	select {
	case <-g.done:
		return g.resp, g.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// run executes one group: it waits out the batching window (unless flushed by
// size, cancelled, or zero), simulates once, publishes the result and retires
// the group so later requests start fresh.
func (co *coalescer) run(ctx context.Context, g *coalesceGroup, req *EstimateRequest, engine *Engine) {
	reason := "immediate"
	if co.window > 0 {
		timer := time.NewTimer(co.window)
		select {
		case <-timer.C:
			reason = "deadline"
		case <-g.fire:
			timer.Stop()
			reason = "size"
		case <-ctx.Done():
			timer.Stop()
			reason = "abandoned"
		}
		co.mu.Lock()
		g.fired = true // the window is over; no joiner may close fire now
		co.mu.Unlock()
	}
	resp, err := engine.Estimate(ctx, req)
	co.mu.Lock()
	g.resp, g.err = resp, err
	if co.groups[g.key] == g {
		delete(co.groups, g.key)
	}
	close(g.done)
	co.mu.Unlock()
	co.metrics.batches.With(reason).Inc()
}

// release drops one waiter from a group. When the last live waiter leaves,
// the group's simulation context is cancelled: either nobody is listening for
// the result (abort the run at its next interval boundary) or the group
// already completed (release the context's resources).
func (co *coalescer) release(g *coalesceGroup) {
	co.mu.Lock()
	g.waiters--
	last := g.waiters == 0
	if last {
		select {
		case <-g.done:
			// Completed: the cancel below only frees the context.
		default:
			g.abandoned = true
			if co.groups[g.key] == g {
				delete(co.groups, g.key)
			}
		}
	}
	co.mu.Unlock()
	if last {
		g.cancel()
	}
}
