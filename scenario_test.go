package gdp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
)

// recordScenarioSources records every benchmark of a scenario workload with
// the seeds a live run would use and returns replay sources.
func recordScenarioSources(t *testing.T, wl Workload, seed int64, n int) []TraceSource {
	t.Helper()
	sources := make([]TraceSource, wl.Cores())
	for core, bench := range wl.Benchmarks {
		var buf bytes.Buffer
		if err := RecordBenchmarkTrace(&buf, bench, seed, core, n); err != nil {
			t.Fatal(err)
		}
		rep, err := NewTraceReplayer(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		sources[core] = rep
	}
	return sources
}

// TestRecordReplayByteIdentical is the PR's acceptance criterion: recording a
// scenario to trace files and replaying it through Engine.Run produces
// estimates byte-identical to running the same scenario live, at worker-pool
// widths 1 and 8.
func TestRecordReplayByteIdentical(t *testing.T) {
	const (
		name         = "cache-thrash"
		cores        = 2
		seed         = int64(13)
		instructions = 1500
		interval     = 1000
	)
	sc, err := ScenarioByName(name)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := sc.Workload(cores)
	if err != nil {
		t.Fatal(err)
	}

	for _, jobs := range []int{1, 8} {
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			engine, err := NewEngine(WithJobs(jobs))
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()

			// Raw simulation comparison through Engine.Run: every cycle count,
			// statistic and per-interval estimate must match exactly.
			runOpts := func() SimOptions {
				acct, err := NewGDPO(cores, 32)
				if err != nil {
					t.Fatal(err)
				}
				return SimOptions{
					Config:              ScaledConfig(cores),
					Workload:            wl,
					InstructionsPerCore: instructions,
					IntervalCycles:      interval,
					Seed:                seed,
					Accountants:         []Accountant{acct},
				}
			}
			live, err := engine.Run(ctx, runOpts())
			if err != nil {
				t.Fatal(err)
			}
			// Record past the sample budget: cores keep fetching until the
			// last core finishes.
			sources := recordScenarioSources(t, wl, seed, instructions*50)
			replayOpts := runOpts()
			replayOpts.Sources = sources
			replayed, err := engine.Run(ctx, replayOpts)
			if err != nil {
				t.Fatal(err)
			}
			for _, src := range sources {
				if rep := src.(*TraceReplayer); rep.Wraps() > 0 {
					t.Fatalf("replayer %q wrapped %d times: recording too short for an exact comparison", rep.Name(), rep.Wraps())
				}
			}
			if live.Cycles != replayed.Cycles {
				t.Fatalf("cycles: live %d, replayed %d", live.Cycles, replayed.Cycles)
			}
			if !reflect.DeepEqual(live.CoreStats, replayed.CoreStats) {
				t.Fatal("per-core statistics diverge between live and replayed runs")
			}
			if !reflect.DeepEqual(live.Intervals, replayed.Intervals) {
				t.Fatal("interval records (including estimates) diverge between live and replayed runs")
			}

			// Reduced-estimate comparison through RunScenario: the JSON
			// encodings must be byte-identical.
			scOpts := ScenarioRunOptions{
				Cores:               cores,
				InstructionsPerCore: instructions,
				IntervalCycles:      interval,
				Seed:                seed,
			}
			liveResp, err := engine.RunScenario(ctx, name, scOpts)
			if err != nil {
				t.Fatal(err)
			}
			scOpts.Sources = recordScenarioSources(t, wl, seed, instructions*50)
			replayResp, err := engine.RunScenario(ctx, name, scOpts)
			if err != nil {
				t.Fatal(err)
			}
			liveJSON, err := json.Marshal(liveResp)
			if err != nil {
				t.Fatal(err)
			}
			replayJSON, err := json.Marshal(replayResp)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(liveJSON, replayJSON) {
				t.Fatalf("estimates diverge:\nlive:   %s\nreplay: %s", liveJSON, replayJSON)
			}
		})
	}
}

// TestReplaySourcesReusable pins the reset contract: running the same replay
// sources through two consecutive runs yields identical estimates, because
// the simulation driver rewinds resettable sources at run start.
func TestReplaySourcesReusable(t *testing.T) {
	const (
		name         = "compute-heavy"
		cores        = 2
		seed         = int64(3)
		instructions = 1000
		interval     = 800
	)
	sc, err := ScenarioByName(name)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := sc.Workload(cores)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	opts := ScenarioRunOptions{
		Cores:               cores,
		InstructionsPerCore: instructions,
		IntervalCycles:      interval,
		Seed:                seed,
		Sources:             recordScenarioSources(t, wl, seed, instructions*50),
	}
	first, err := engine.RunScenario(context.Background(), name, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := engine.RunScenario(context.Background(), name, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if !bytes.Equal(a, b) {
		t.Fatalf("reusing replay sources changed the estimates:\nfirst:  %s\nsecond: %s", a, b)
	}
}

func TestEngineScenariosListsRegistry(t *testing.T) {
	engine, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	scs := engine.Scenarios()
	if len(scs) < 8 {
		t.Fatalf("Engine.Scenarios() lists %d scenarios, want at least 8", len(scs))
	}
}

func TestRunScenarioUnknownNameTypedError(t *testing.T) {
	engine, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	_, err = engine.RunScenario(context.Background(), "no-such-scenario", ScenarioRunOptions{})
	if err == nil {
		t.Fatal("RunScenario succeeded for an unknown name")
	}
	var unknown *UnknownScenarioError
	if !errors.As(err, &unknown) {
		t.Fatalf("error %v is not an *UnknownScenarioError", err)
	}
	var reqErr *RequestError
	if !errors.As(err, &reqErr) {
		t.Fatalf("error %v would not map to HTTP 400", err)
	}
}

func TestReplayValidation(t *testing.T) {
	engine, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := engine.Replay(ctx, Workload{}, nil, ScenarioRunOptions{}); err == nil {
		t.Error("Replay accepted zero sources")
	}
	bench, err := BenchmarkByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RecordBenchmarkTrace(&buf, bench, 1, 0, 100); err != nil {
		t.Fatal(err)
	}
	rep, err := NewTraceReplayer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	twoBench := Workload{ID: "w", Benchmarks: []Benchmark{bench, bench}}
	if _, err := engine.Replay(ctx, twoBench, []TraceSource{rep}, ScenarioRunOptions{}); err == nil {
		t.Error("Replay accepted a workload/source count mismatch")
	}
	oneBench := Workload{ID: "w", Benchmarks: []Benchmark{bench}}
	if _, err := engine.Replay(ctx, oneBench, []TraceSource{rep}, ScenarioRunOptions{Sources: []TraceSource{rep}}); err == nil {
		t.Error("Replay accepted sources in both the parameter and ScenarioRunOptions")
	}
}

func TestScenariosEndpoint(t *testing.T) {
	srv := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/v1/scenarios", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	var resp ScenariosResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.APIVersion != APIVersion {
		t.Errorf("api_version = %q", resp.APIVersion)
	}
	if len(resp.Scenarios) < 8 {
		t.Fatalf("endpoint lists %d scenarios, want at least 8", len(resp.Scenarios))
	}
	for _, sc := range resp.Scenarios {
		if sc.Name == "" || sc.Description == "" || sc.Class == "" {
			t.Errorf("incomplete scenario row %+v", sc)
		}
	}

	post := httptest.NewRequest(http.MethodPost, "/v1/scenarios", nil)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, post)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/scenarios status = %d, want 405", rec.Code)
	}
}

func TestEstimateEndpointScenario(t *testing.T) {
	srv := testServer(t)
	rec := postJSON(t, srv, "/v1/estimate",
		`{"scenario": "compute-heavy", "cores": 2, "instructions_per_core": 1000, "interval_cycles": 800}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	var resp EstimateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Workload != "2c-scenario-compute-heavy" {
		t.Errorf("workload = %q", resp.Workload)
	}
	if len(resp.Cores) != 2 || resp.Cores[0].Benchmark != "compute-heavy.0" {
		t.Errorf("unexpected cores payload: %+v", resp.Cores)
	}
}

// TestEstimateEndpointScenarioBadRequests pins the 400 mapping of the typed
// unknown-scenario error and the mutual-exclusion rules.
func TestEstimateEndpointScenarioBadRequests(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name string
		body string
	}{
		{"unknown scenario", `{"scenario": "no-such-scenario"}`},
		{"scenario with benchmarks", `{"scenario": "streaming", "benchmarks": ["gzip"]}`},
		{"scenario with mix", `{"scenario": "streaming", "mix": "H"}`},
		{"scenario with bad cores", `{"scenario": "streaming", "cores": 9999}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postJSON(t, srv, "/v1/estimate", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
			}
		})
	}
}

// TestSweepValidateCountsParsedMixes pins the grid-size accounting against
// whitespace-only mix entries: ParseMixList drops them, the sweep then runs
// with the 3-mix default, and the cell bound must be computed from that
// default — not from the raw entry count.
func TestSweepValidateCountsParsedMixes(t *testing.T) {
	req := &SweepRequest{CoreCounts: make([]int, 200), Mixes: []string{" "}}
	for i := range req.CoreCounts {
		req.CoreCounts[i] = 2
	}
	// 200 cores x 3 defaulted mixes = 600 cells > the 512-cell limit.
	if _, err := req.validate(); err == nil {
		t.Fatal("validate accepted a grid that defaults past the cell limit")
	}
}

func TestSweepEndpointScenarios(t *testing.T) {
	srv := testServer(t)
	rec := postJSON(t, srv, "/v1/sweep",
		`{"core_counts": [2], "mixes": ["H"], "scenarios": ["compute-heavy"], "techniques": ["GDP-O"], "workloads": 1, "instructions_per_core": 1000, "interval_cycles": 800}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	var resp SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cells != 2 {
		t.Errorf("cells = %d, want 2 (one accuracy + one scenario)", resp.Cells)
	}
	var scenarioRows int
	for _, row := range resp.Rows {
		if row.Kind == "scenario" {
			scenarioRows++
			if row.Mix != "compute-heavy" {
				t.Errorf("scenario row mix = %q", row.Mix)
			}
		}
	}
	if scenarioRows == 0 {
		t.Error("no scenario rows in sweep response")
	}

	rec = postJSON(t, srv, "/v1/sweep", `{"scenarios": ["bogus"]}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown sweep scenario status = %d, want 400", rec.Code)
	}
}
