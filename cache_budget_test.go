package gdp

import (
	"context"
	"encoding/json"
	"testing"
)

// budgetSweepOpts is a grid with enough distinct cells (4 PRB sizes x 5
// techniques' shared entries plus private references) that a kilobyte-scale
// cache budget forces evictions mid-sweep.
func budgetSweepOpts() SweepOptions {
	return SweepOptions{
		CoreCounts:          []int{2},
		Mixes:               []MixKind{MixH},
		PRBSizes:            []int{8, 16, 32, 64},
		Workloads:           1,
		InstructionsPerCore: 2000,
		IntervalCycles:      2000,
		Seed:                7,
		Jobs:                2,
	}
}

// TestSweepByteIdenticalUnderCacheBudget is the acceptance check for bounded
// caching: a sweep whose unique entries exceed the memory budget completes
// with byte-identical rows vs an unbounded run, the memory layer never
// exceeds the budget, and the evicted entries are re-served from the disk
// layer on a repeat sweep (disk hits move, nothing recomputes into different
// rows).
func TestSweepByteIdenticalUnderCacheBudget(t *testing.T) {
	ctx := context.Background()

	unbounded, err := NewEngine(WithJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	want, err := unbounded.Sweep(ctx, budgetSweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want.Rows)
	if err != nil {
		t.Fatal(err)
	}

	const budget = 1024
	cache, err := NewDiskResultCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := NewEngine(WithJobs(2), WithCache(cache), WithCacheBudget(budget))
	if err != nil {
		t.Fatal(err)
	}
	got, err := bounded.Sweep(ctx, budgetSweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got.Rows)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("bounded sweep rows differ from unbounded:\n%s\nvs\n%s", gotJSON, wantJSON)
	}

	s := cache.DetailedStats()
	if s.MemoryBytes > budget {
		t.Fatalf("MemoryBytes = %d, want <= %d", s.MemoryBytes, budget)
	}
	if s.Evictions == 0 {
		t.Fatal("no evictions despite a 1 KB budget")
	}
	if s.MemoryBudgetBytes != budget {
		t.Fatalf("MemoryBudgetBytes = %d, want %d", s.MemoryBudgetBytes, budget)
	}

	// The repeat sweep re-serves evicted entries from the disk tier: the
	// disk-hit counter must move, and the rows stay byte-identical.
	diskBefore := s.DiskHits
	again, err := bounded.Sweep(ctx, budgetSweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	againJSON, err := json.Marshal(again.Rows)
	if err != nil {
		t.Fatal(err)
	}
	if string(againJSON) != string(wantJSON) {
		t.Fatal("repeat sweep rows differ after eviction")
	}
	if after := cache.DetailedStats(); after.DiskHits <= diskBefore {
		t.Errorf("disk hits did not move on the repeat sweep: %d -> %d", diskBefore, after.DiskHits)
	}
}

// TestWithCacheBudgetValidation pins the option's range check and that the
// budget lands on a caller-provided cache regardless of option order.
func TestWithCacheBudgetValidation(t *testing.T) {
	if _, err := NewEngine(WithCacheBudget(-1)); err == nil {
		t.Error("negative budget accepted")
	}
	cache := NewResultCache()
	if _, err := NewEngine(WithCacheBudget(4096), WithCache(cache)); err != nil {
		t.Fatal(err)
	}
	if got := cache.MaxBytes(); got != 4096 {
		t.Errorf("budget before WithCache: MaxBytes = %d, want 4096", got)
	}
	cache2 := NewResultCache()
	if _, err := NewEngine(WithCache(cache2), WithCacheBudget(8192)); err != nil {
		t.Fatal(err)
	}
	if got := cache2.MaxBytes(); got != 8192 {
		t.Errorf("budget after WithCache: MaxBytes = %d, want 8192", got)
	}
}
