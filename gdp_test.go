package gdp

import (
	"testing"
)

func TestPublicConfigConstructors(t *testing.T) {
	for _, cores := range []int{2, 4, 8} {
		if err := PaperConfig(cores).Validate(); err != nil {
			t.Errorf("PaperConfig(%d): %v", cores, err)
		}
		if err := ScaledConfig(cores).Validate(); err != nil {
			t.Errorf("ScaledConfig(%d): %v", cores, err)
		}
	}
}

func TestPublicBenchmarkSuite(t *testing.T) {
	if len(BenchmarkSuite()) != 52 {
		t.Errorf("suite size = %d, want 52", len(BenchmarkSuite()))
	}
	if _, err := BenchmarkByName("omnetpp"); err != nil {
		t.Error(err)
	}
	ws, err := GenerateWorkloads(4, MixH, 3, 1)
	if err != nil || len(ws) != 3 {
		t.Errorf("GenerateWorkloads: %v (%d)", err, len(ws))
	}
}

func TestPublicAccountantConstructors(t *testing.T) {
	for name, build := range map[string]func() (Accountant, error){
		"GDP":   func() (Accountant, error) { return NewGDP(4, 32) },
		"GDP-O": func() (Accountant, error) { return NewGDPO(4, 32) },
		"ITCA":  func() (Accountant, error) { return NewITCA(4) },
		"PTCA":  func() (Accountant, error) { return NewPTCA(4) },
		"ASM":   func() (Accountant, error) { return NewASM(4, 0) },
	} {
		a, err := build()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if a.Name() != name {
			t.Errorf("constructor for %s produced %s", name, a.Name())
		}
	}
	unit, err := NewDataflowUnit(DataflowOptions{PRBEntries: 32})
	if err != nil || unit == nil {
		t.Errorf("NewDataflowUnit: %v", err)
	}
}

func TestPublicPoliciesHavePaperNames(t *testing.T) {
	for want, p := range map[string]PartitionPolicy{
		"LRU": LRUPolicy, "UCP": UCPPolicy, "MCP": MCPPolicy, "MCP-O": MCPOPolicy,
	} {
		if p.Name() != want {
			t.Errorf("policy name %q, want %q", p.Name(), want)
		}
	}
}

func TestPublicEndToEndRun(t *testing.T) {
	cfg := ScaledConfig(2)
	ws, err := GenerateWorkloads(2, MixH, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := NewGDPO(2, 32)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(SimOptions{
		Config:              cfg,
		Workload:            ws[0],
		InstructionsPerCore: 3000,
		IntervalCycles:      3000,
		Seed:                9,
		Accountants:         []Accountant{acct},
		Partitioner:         MCPOPolicy,
		PartitionSource:     "GDP-O",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || len(res.Intervals[0]) == 0 {
		t.Fatal("run produced no results")
	}
	priv, err := RunPrivate(cfg, ws[0].Benchmarks[0], res.SamplePoints[0], 9)
	if err != nil {
		t.Fatal(err)
	}
	privCPI := []float64{priv.Total.CPI(), priv.Total.CPI()}
	sharedCPI := []float64{res.SampleStats[0].CPI(), res.SampleStats[1].CPI()}
	stp, err := STP(privCPI, sharedCPI)
	if err != nil {
		t.Fatal(err)
	}
	if stp <= 0 || stp > 2.01 {
		t.Errorf("STP = %v out of range", stp)
	}
	if _, err := ANTT(privCPI, sharedCPI); err != nil {
		t.Error(err)
	}
}

func TestPublicScales(t *testing.T) {
	if DefaultScale().WorkloadsPerCell >= PaperScale().WorkloadsPerCell {
		t.Error("paper scale should be larger than default scale")
	}
}

func TestPublicSweepAndCache(t *testing.T) {
	cache := NewResultCache()
	var events int
	res, err := Sweep(SweepOptions{
		CoreCounts:          []int{2},
		Mixes:               []MixKind{MixH},
		PRBSizes:            []int{32},
		Techniques:          []string{"GDP-O"},
		Workloads:           1,
		InstructionsPerCore: 2000,
		IntervalCycles:      2000,
		Seed:                5,
		Jobs:                2,
		Cache:               cache,
		Progress:            func(p RunnerProgress) { events++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Name != "GDP-O" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if events == 0 {
		t.Error("no progress events delivered")
	}
	if _, misses := cache.Stats(); misses == 0 {
		t.Error("cache saw no simulations")
	}
	if DefaultResultCache() == nil {
		t.Error("no default result cache")
	}
}
