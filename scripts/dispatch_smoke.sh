#!/bin/sh
# dispatch_smoke.sh is the end-to-end check of the distributed sweep
# dispatcher: it boots two real `gdpsim serve` workers on ephemeral loopback
# ports, runs the same tiny sweep grid once locally and once sharded across
# the fleet with `gdpsim sweep -workers`, and fails unless the two JSON
# exports are byte-identical. It then scrapes a worker's /metrics for the
# gdpsim_dispatch_served_* families and the dispatcher-facing /healthz to
# prove the fleet actually executed cells (rather than the dispatcher
# silently falling back to local execution).
set -eu

GO=${GO:-go}
workdir=$(mktemp -d)

cleanup() {
    [ -n "${w1_pid:-}" ] && kill "$w1_pid" 2>/dev/null || true
    [ -n "${w2_pid:-}" ] && kill "$w2_pid" 2>/dev/null || true
    [ -n "${w1_pid:-}" ] && wait "$w1_pid" 2>/dev/null || true
    [ -n "${w2_pid:-}" ] && wait "$w2_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

$GO build -o "$workdir/gdpsim" ./cmd/gdpsim

# Tiny deterministic scale: the same flags for workers and dispatcher runs.
SCALE="-workloads 1 -instructions 3000 -interval 2000 -seed 1"
GRID="-cores 2 -mixes H,M,L -prb 16,32 -techniques GDP"

# Boot two workers; the startup log line carries the resolved address:
#   ... level=INFO msg=serving addr=127.0.0.1:NNNNN ...
boot_worker() {
    log="$1"
    # shellcheck disable=SC2086
    "$workdir/gdpsim" $SCALE serve -addr 127.0.0.1:0 2>"$log" &
}
wait_addr() {
    log="$1" pid="$2" addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's/.*msg=serving .*addr=\([0-9.:]*\).*/\1/p' "$log" | head -n1)
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || { echo "worker exited early:" >&2; cat "$log" >&2; exit 1; }
        sleep 0.2
    done
    [ -n "$addr" ] || { echo "no serving line in:" >&2; cat "$log" >&2; exit 1; }
    echo "$addr"
}

boot_worker "$workdir/w1.log"; w1_pid=$!
boot_worker "$workdir/w2.log"; w2_pid=$!
w1=$(wait_addr "$workdir/w1.log" "$w1_pid")
w2=$(wait_addr "$workdir/w2.log" "$w2_pid")
echo "dispatch-smoke: workers on $w1 and $w2"

# Reference: the grid on a single machine.
# shellcheck disable=SC2086
"$workdir/gdpsim" $SCALE sweep $GRID -json "$workdir/local.json" >/dev/null

# The same grid sharded across the fleet.
# shellcheck disable=SC2086
"$workdir/gdpsim" $SCALE sweep $GRID -workers "$w1,$w2" -json "$workdir/fleet.json" >/dev/null

cmp "$workdir/local.json" "$workdir/fleet.json" || {
    echo "distributed sweep rows differ from single-machine rows"; exit 1; }
echo "dispatch-smoke: fleet rows byte-identical to local"

# The fleet must have actually served cells: between the two workers, every
# cell of the 6-cell grid ran remotely (barring steals back to local, which
# this healthy-fleet run should not need).
served=0
for addr in "$w1" "$w2"; do
    metrics=$(curl -fsS "http://$addr/metrics")
    n=$(echo "$metrics" | sed -n 's/^gdpsim_dispatch_served_cells_total{outcome="completed"} \([0-9][0-9]*\).*/\1/p')
    served=$((served + ${n:-0}))
    echo "$metrics" | grep -q '^# TYPE gdpsim_dispatch_served_batches_total counter' || {
        echo "worker $addr missing gdpsim_dispatch_served_batches_total"; exit 1; }
done
[ "$served" -ge 6 ] || { echo "fleet served only $served of 6 cells"; exit 1; }
echo "dispatch-smoke: fleet served $served cells"

# A malformed fleet specification is a 400 from the sweep endpoint.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$w1/v1/sweep" \
    -d '{"workers": ["ftp://bad"]}')
[ "$code" = "400" ] || { echo "bad workers field returned $code, want 400"; exit 1; }

echo "dispatch-smoke: ok"
