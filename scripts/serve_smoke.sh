#!/bin/sh
# serve_smoke.sh boots `gdpsim serve` on an ephemeral loopback port, probes
# /healthz and /metrics, and fails unless the health payload is ok and the
# metrics exposition carries the gdpsim_http_requests_total family (which the
# healthz probe itself populates). It is the CI check that the binary, the
# HTTP layer and the telemetry registry work end to end, not just in-process.
set -eu

GO=${GO:-go}
workdir=$(mktemp -d)
log="$workdir/serve.log"

cleanup() {
    [ -n "${server_pid:-}" ] && kill "$server_pid" 2>/dev/null || true
    [ -n "${server_pid:-}" ] && wait "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

$GO build -o "$workdir/gdpsim" ./cmd/gdpsim
"$workdir/gdpsim" -cache-mem-mb 64 serve -addr 127.0.0.1:0 -coalesce-window 5ms 2>"$log" &
server_pid=$!

# The startup log line carries the resolved ephemeral address:
#   ... level=INFO msg=serving addr=127.0.0.1:NNNNN ...
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/.*msg=serving .*addr=\([0-9.:]*\).*/\1/p' "$log" | head -n1)
    [ -n "$addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || { echo "serve exited early:"; cat "$log"; exit 1; }
    sleep 0.2
done
[ -n "$addr" ] || { echo "no serving line in:"; cat "$log"; exit 1; }
echo "serve-smoke: server on $addr"

health=$(curl -fsS "http://$addr/healthz")
echo "$health" | grep -q '"status": "ok"' || { echo "bad healthz payload: $health"; exit 1; }
echo "$health" | grep -q '"schema_version"' || { echo "healthz missing schema_version: $health"; exit 1; }

# One real estimate exercises the coalescer path (a single request is still
# one batch) before the metrics scrape.
curl -fsS -X POST "http://$addr/v1/estimate" \
    -d '{"cores": 2, "mix": "H", "instructions_per_core": 2000, "interval_cycles": 2000}' \
    | grep -q '"cores"' || { echo "estimate request failed"; exit 1; }

metrics=$(curl -fsS "http://$addr/metrics")
echo "$metrics" | grep -q '^gdpsim_http_requests_total{' || {
    echo "metrics exposition missing gdpsim_http_requests_total:"; echo "$metrics" | head -n 20; exit 1; }
echo "$metrics" | grep -q '^# TYPE gdpsim_http_request_seconds histogram' || {
    echo "metrics exposition missing the latency histogram family"; exit 1; }
for series in gdpsim_cache_evictions_total gdpsim_cache_mem_bytes \
              gdpsim_cache_mem_budget_bytes gdpsim_coalesce_joined_total; do
    echo "$metrics" | grep -q "^$series " || {
        echo "metrics exposition missing $series"; exit 1; }
done
echo "$metrics" | grep -q '^gdpsim_coalesce_batches_total{reason=' || {
    echo "metrics exposition missing gdpsim_coalesce_batches_total series"; exit 1; }
# -cache-mem-mb 64 = 67108864 bytes must be reported as the budget gauge.
echo "$metrics" | grep -q '^gdpsim_cache_mem_budget_bytes 6.7108864e+07' || {
    echo "cache budget gauge does not reflect -cache-mem-mb 64:"
    echo "$metrics" | grep '^gdpsim_cache_mem_budget_bytes'; exit 1; }

kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
grep -q 'msg="shutting down' "$log" || { echo "no graceful-shutdown line in:"; cat "$log"; exit 1; }
server_pid=""
echo "serve-smoke: ok"
