#!/bin/sh
# cache_smoke.sh is the end-to-end check for the bounded result cache: it runs
# the same small sweep grid three times with the real binary — unbounded, then
# under a deliberately starved -cache-mem-mb budget with a disk spill tier,
# then again against the warm disk tier — and fails unless all three exports
# are byte-identical. A sweep whose unique entries overflow the budget must
# evict to disk and re-serve from it, never recompute into different rows.
set -eu

GO=${GO:-go}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT INT TERM

$GO build -o "$workdir/gdpsim" ./cmd/gdpsim

grid="-workloads 1 -instructions 2000 -interval 2000"
sweep="sweep -cores 2 -mixes H -prb 8,16,32,64 -techniques GDP-O"

# shellcheck disable=SC2086  # grid/sweep are intentionally word-split flags
"$workdir/gdpsim" $grid $sweep -json "$workdir/base.json" >/dev/null

# 0.001 MiB ~= 1 KB: far less than the grid's unique entries, forcing
# evictions mid-sweep.
# shellcheck disable=SC2086
"$workdir/gdpsim" -cache-dir "$workdir/cache" -cache-mem-mb 0.001 \
    $grid $sweep -json "$workdir/bounded.json" >/dev/null

cmp -s "$workdir/base.json" "$workdir/bounded.json" || {
    echo "cache-smoke: bounded sweep rows differ from unbounded"
    diff "$workdir/base.json" "$workdir/bounded.json" || true
    exit 1
}

# The spill tier must actually hold entries (sharded layout dir/ab/<key>.json).
spilled=$(find "$workdir/cache" -name '*.json' | wc -l)
[ "$spilled" -gt 0 ] || { echo "cache-smoke: disk tier holds no entries"; exit 1; }

# A second bounded run re-serves evicted entries from the disk tier.
# shellcheck disable=SC2086
"$workdir/gdpsim" -cache-dir "$workdir/cache" -cache-mem-mb 0.001 \
    $grid $sweep -json "$workdir/again.json" >/dev/null
cmp -s "$workdir/base.json" "$workdir/again.json" || {
    echo "cache-smoke: repeat bounded sweep rows differ"; exit 1; }

echo "cache-smoke: ok ($spilled entries spilled, rows byte-identical)"
