#!/bin/sh
# chaos_smoke.sh is the end-to-end check of the fault-injection harness and
# crash-safe sweep journal:
#
#   1. A sweep running under injected disk-write errors (-journal armed) is
#      SIGKILLed mid-grid; `sweep -resume` finishes it, and the final JSON
#      export must be byte-identical to an uninterrupted fault-free run.
#   2. The same grid sharded across a real worker whose cell execution is
#      injected to panic — the worker must survive (the cell comes back as a
#      retried failure, not a dead process), the dispatcher's stream is cut
#      mid-flight, and the rows still match byte for byte.
#   3. The worker's /metrics must expose gdpsim_fault_injected_total for every
#      injection point, with the cell.exec point actually moved.
set -eu

GO=${GO:-go}
workdir=$(mktemp -d)

cleanup() {
    [ -n "${w1_pid:-}" ] && kill "$w1_pid" 2>/dev/null || true
    [ -n "${w1_pid:-}" ] && wait "$w1_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

$GO build -o "$workdir/gdpsim" ./cmd/gdpsim

# Tiny deterministic scale; instructions sized so one cell takes long enough
# that the kill below lands mid-grid rather than after it.
SCALE="-workloads 1 -instructions 20000 -interval 2000 -seed 1"
GRID="-cores 2 -mixes H,M,L -prb 16,32 -techniques GDP"

# Reference: the grid uninterrupted, no faults.
# shellcheck disable=SC2086
"$workdir/gdpsim" $SCALE sweep $GRID -json "$workdir/ref.json" >/dev/null
echo "chaos-smoke: reference rows computed"

# --- Phase 1: crash mid-grid under injected disk faults, then resume -------
journal="$workdir/sweep.journal"
# shellcheck disable=SC2086
FI_SPEC="disk.write:err=EIO:every=3" \
    "$workdir/gdpsim" -jobs 1 $SCALE sweep $GRID -journal "$journal" \
    -json "$workdir/crashed.json" >/dev/null 2>"$workdir/crash.log" &
sweep_pid=$!

# SIGKILL once the journal holds at least two completed cells (header + 2
# records = 3 fsynced lines). If the grid outruns the poll, the kill is a
# no-op and the resume below simply replays a complete journal.
for _ in $(seq 1 200); do
    lines=0
    [ -f "$journal" ] && lines=$(wc -l <"$journal")
    [ "$lines" -ge 3 ] && break
    kill -0 "$sweep_pid" 2>/dev/null || break
    sleep 0.05
done
kill -9 "$sweep_pid" 2>/dev/null || true
wait "$sweep_pid" 2>/dev/null || true
[ -s "$journal" ] || { echo "no journal survived the kill"; cat "$workdir/crash.log" >&2; exit 1; }
echo "chaos-smoke: killed sweep mid-grid, journal has $(wc -l <"$journal") lines"

# A restart without -resume must refuse to clobber the crashed run's journal.
# shellcheck disable=SC2086
if "$workdir/gdpsim" $SCALE sweep $GRID -journal "$journal" >/dev/null 2>&1; then
    echo "restart without -resume clobbered the journal"; exit 1
fi

# Resume under the same injected disk faults: byte-identical to the reference.
# shellcheck disable=SC2086
FI_SPEC="disk.write:err=EIO:every=3" \
    "$workdir/gdpsim" -jobs 1 $SCALE sweep $GRID -journal "$journal" -resume \
    -json "$workdir/resumed.json" >/dev/null
cmp "$workdir/ref.json" "$workdir/resumed.json" || {
    echo "resumed rows differ from the uninterrupted run"; exit 1; }
echo "chaos-smoke: resumed rows byte-identical to reference"

# --- Phase 2: fleet sweep with a panicking worker and cut streams ----------
# The worker's first cell execution panics (injected); the dispatcher's result
# stream is cut twice. The worker must survive its panic and the rows match.
# shellcheck disable=SC2086
FI_SPEC="cell.exec:panic=1:times=1" \
    "$workdir/gdpsim" $SCALE serve -addr 127.0.0.1:0 2>"$workdir/w1.log" &
w1_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/.*msg=serving .*addr=\([0-9.:]*\).*/\1/p' "$workdir/w1.log" | head -n1)
    [ -n "$addr" ] && break
    kill -0 "$w1_pid" 2>/dev/null || { echo "worker exited early:" >&2; cat "$workdir/w1.log" >&2; exit 1; }
    sleep 0.2
done
[ -n "$addr" ] || { echo "no serving line in:" >&2; cat "$workdir/w1.log" >&2; exit 1; }
echo "chaos-smoke: worker on $addr (cell.exec panic armed)"

# shellcheck disable=SC2086
FI_SPEC="dispatch.stream:cut=1:times=2" \
    "$workdir/gdpsim" $SCALE sweep $GRID -workers "$addr" \
    -json "$workdir/fleet.json" >/dev/null
cmp "$workdir/ref.json" "$workdir/fleet.json" || {
    echo "fleet rows under chaos differ from the reference"; exit 1; }
echo "chaos-smoke: fleet rows byte-identical under cut streams and a worker panic"

# The worker is still alive and its telemetry accounts the chaos: every
# injection point is exposed, cell.exec actually fired, and the panic was
# served as a retried cell rather than a dead worker.
kill -0 "$w1_pid" 2>/dev/null || { echo "worker died of its injected panic"; exit 1; }
metrics=$(curl -fsS "http://$addr/metrics")
for point in disk.read disk.write dispatch.send dispatch.stream cell.exec runner.job journal.write; do
    echo "$metrics" | grep -q "gdpsim_fault_injected_total{point=\"$point\"}" || {
        echo "worker /metrics missing injection point $point"; exit 1; }
done
fired=$(echo "$metrics" | sed -n 's/^gdpsim_fault_injected_total{point="cell.exec"} \([0-9][0-9]*\).*/\1/p')
[ "${fired:-0}" -ge 1 ] || { echo "cell.exec injection never fired on the worker"; exit 1; }
echo "$metrics" | grep -q 'gdpsim_dispatch_served_cells_total{outcome="panic"}' || {
    echo "worker /metrics missing the panic outcome"; exit 1; }
echo "chaos-smoke: worker survived, fault counters moved (cell.exec=$fired)"

echo "chaos-smoke: ok"
