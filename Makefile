GO ?= go

.PHONY: all build test race fuzz-smoke vet fmt-check bench bench-smoke bench-go bench-sweep serve-smoke dispatch-smoke cache-smoke chaos-smoke clean

all: build test vet fmt-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector (CI runs this as its own
# job; it is several times slower than plain `make test`).
race:
	$(GO) test -race ./...

# fuzz-smoke runs each checked-in fuzz target briefly against its seed corpus
# plus a short exploration budget. A regression found here reproduces with
# `go test -run=Fuzz` once the failing input is added to testdata.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReader$$ -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzReaderStreaming -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzEstimateRequestJSON -fuzztime=$(FUZZTIME) .
	$(GO) test -run='^$$' -fuzz=FuzzSweepRequestJSON -fuzztime=$(FUZZTIME) .

vet:
	$(GO) vet ./...

# fmt-check fails when any file is not gofmt-clean (CI-friendly: no rewrite).
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench runs the benchmark-regression harness (internal/perf) at full size:
# every scenario on both the event-driven and the cycle-by-cycle reference
# driver, plus the sweep-level warmup-sharing benchmark (cold vs checkpointed
# accuracy-sweep fixture), writing the BENCH_<n>.json trajectory artifact.
# Takes a few minutes.
BENCH_OUT ?= BENCH_9.json
bench:
	$(GO) run ./cmd/gdpsim bench -out $(BENCH_OUT)

# bench-smoke is the CI regression gate: a small fixed-seed scenario on the
# fast driver only, failing if the steady-state interval loop allocates, if
# checkpointed warmup sharing yields less than 1.5x on the tiny sweep fixture,
# or if the parallel driver (-sim-workers) is slower than 1.5x serial on the
# 16-core point / diverges from serial byte for byte. The parallel speedup
# half self-waives on machines with fewer than 4 CPUs; identity always gates.
bench-smoke:
	$(GO) run ./cmd/gdpsim bench -quick -out /dev/null -max-allocs 0.5 -min-sweep-speedup 1.5 -min-parallel-speedup 1.5

# serve-smoke boots the real binary, curls /healthz and /metrics and checks
# the telemetry exposition end to end (see scripts/serve_smoke.sh).
serve-smoke:
	sh scripts/serve_smoke.sh

# dispatch-smoke boots two real workers, shards a sweep across them with
# `gdpsim sweep -workers`, byte-compares the rows against a single-machine
# run and checks the dispatch telemetry (see scripts/dispatch_smoke.sh).
dispatch-smoke:
	sh scripts/dispatch_smoke.sh

# cache-smoke byte-compares a sweep run unbounded against the same sweep
# under a starved -cache-mem-mb budget with disk spill, twice (cold and warm
# disk tier); see scripts/cache_smoke.sh.
cache-smoke:
	sh scripts/cache_smoke.sh

# chaos-smoke SIGKILLs a journaled sweep mid-grid under injected disk faults,
# resumes it, and runs a fleet sweep against a worker with an injected
# cell-execution panic and cut result streams — all byte-compared against an
# uninterrupted fault-free run (see scripts/chaos_smoke.sh).
chaos-smoke:
	sh scripts/chaos_smoke.sh

# bench-go runs the go-test figure/regeneration benchmarks.
bench-go:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-sweep compares the runner's serial vs parallel accuracy-study
# wall-clock (BenchmarkAccuracySweep/jobs=1 vs /jobs=N).
bench-sweep:
	$(GO) test -bench=BenchmarkAccuracySweep -run=^$$ .

clean:
	$(GO) clean ./...
