GO ?= go

.PHONY: all build test vet fmt-check bench bench-sweep clean

all: build test vet fmt-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt-check fails when any file is not gofmt-clean (CI-friendly: no rewrite).
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-sweep compares the runner's serial vs parallel accuracy-study
# wall-clock (BenchmarkAccuracySweep/jobs=1 vs /jobs=N).
bench-sweep:
	$(GO) test -bench=BenchmarkAccuracySweep -run=^$$ .

clean:
	$(GO) clean ./...
